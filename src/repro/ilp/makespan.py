"""Unified minimum-makespan interface.

Experiments (Figure 7) need "the minimum makespan of this task on ``m`` cores
plus one accelerator" without caring which engine computed it.
:func:`minimum_makespan` dispatches between the HiGHS time-indexed ILP and
the exact branch-and-bound search and returns a homogeneous result object,
including a validation step that replays the produced start times as a
schedule and checks their legality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..core.exceptions import SolverError
from ..core.graph import NodeId
from ..core.task import DagTask
from .bounds import best_list_schedule, makespan_lower_bound
from .branch_and_bound import branch_and_bound_makespan
from .solver import solve_minimum_makespan

__all__ = [
    "MakespanMethod",
    "MakespanResult",
    "minimum_makespan",
    "degraded_makespan_result",
    "verify_schedule",
]


class MakespanMethod(enum.Enum):
    """Which optimal-makespan engine to use."""

    ILP = "ilp"
    BRANCH_AND_BOUND = "bnb"
    #: ILP for anything but tiny tasks, branch-and-bound for <= 12 nodes.
    AUTO = "auto"


@dataclass
class MakespanResult:
    """Minimum makespan of a task together with a witnessing schedule.

    ``engine_stats`` records the cost of the solve: ``explored_states``,
    ``memo_hits`` and ``engine`` for the branch-and-bound,
    ``variables``/``constraints``/``horizon``/``warm_started`` for the ILP.

    ``degraded`` marks a result produced by the bound-sandwich fallback
    (:func:`degraded_makespan_result`) when the exact engines were skipped
    -- time budget exhausted or circuit breaker open.  A degraded makespan
    is a *verified upper bound*, not the optimum, and must never be cached
    or reported as exact.
    """

    makespan: float
    start_times: dict[NodeId, float]
    method: MakespanMethod
    optimal: bool
    cores: int
    accelerators: int
    engine_stats: dict = field(default_factory=dict)
    degraded: bool = False

    def __float__(self) -> float:
        return float(self.makespan)


def verify_schedule(
    task: DagTask,
    start_times: dict[NodeId, float],
    cores: int,
    accelerators: int = 1,
) -> None:
    """Check that a start-time assignment is a legal heterogeneous schedule.

    Raises
    ------
    SolverError
        On missing nodes, precedence violations or capacity violations.
    """
    graph = task.graph
    missing = set(graph.nodes()) - set(start_times)
    if missing:
        raise SolverError(f"schedule misses nodes {sorted(map(repr, missing))}")
    for src, dst in graph.edges():
        if start_times[dst] + 1e-9 < start_times[src] + graph.wcet(src):
            raise SolverError(
                f"precedence ({src!r}, {dst!r}) violated in schedule"
            )
    offloaded = task.offloaded_node if accelerators > 0 else None

    def check_capacity(node_ids: list[NodeId], capacity: int, label: str) -> None:
        intervals = [
            (start_times[node], start_times[node] + graph.wcet(node))
            for node in node_ids
            if graph.wcet(node) > 0
        ]
        boundaries = sorted({start for start, _ in intervals})
        for point in boundaries:
            overlap = sum(1 for start, end in intervals if start <= point < end)
            if overlap > capacity:
                raise SolverError(
                    f"{label} capacity {capacity} exceeded at time {point}"
                )

    check_capacity(
        [node for node in graph.nodes() if node != offloaded], cores, "host"
    )
    if offloaded is not None:
        check_capacity([offloaded], max(accelerators, 1), "accelerator")


def minimum_makespan(
    task: DagTask,
    cores: int,
    accelerators: int = 1,
    method: MakespanMethod = MakespanMethod.AUTO,
    time_limit: Optional[float] = None,
    mip_gap: float = 0.0,
    warm_start: bool = True,
) -> MakespanResult:
    """Minimum makespan of a heterogeneous DAG task on ``m`` cores + device.

    Parameters
    ----------
    task:
        The task (integer WCETs required).
    cores:
        Number of identical host cores ``m``.
    accelerators:
        Number of accelerator devices.
    method:
        ``ILP`` (HiGHS), ``BRANCH_AND_BOUND`` or ``AUTO``.
    time_limit, mip_gap:
        ``time_limit`` bounds the wall-clock of *either* engine (HiGHS
        option, or the branch-and-bound's periodic deadline check);
        ``mip_gap`` applies to the ILP only.  When a limit truncates the
        solve the result may be sub-optimal; ``optimal`` reflects it.
    warm_start:
        Passed through to the ILP solver; ``False`` forces the cold
        (pre-PR-2) model so HiGHS genuinely solves the instance -- required
        when the result serves as an *independent* cross-check of the
        branch-and-bound (both warm-start ingredients are shared with it).
    """
    if method is MakespanMethod.AUTO:
        busy = sum(1 for node in task.graph.nodes() if task.graph.wcet(node) > 0)
        method = (
            MakespanMethod.BRANCH_AND_BOUND if busy <= 12 else MakespanMethod.ILP
        )

    if method is MakespanMethod.BRANCH_AND_BOUND:
        result = branch_and_bound_makespan(
            task, cores, accelerators, time_limit=time_limit
        )
        makespan = result.makespan
        starts = result.start_times
        optimal = result.optimal
        stats = {
            "engine": result.engine,
            "explored_states": result.explored_states,
            "memo_hits": result.memo_hits,
        }
    else:
        solution = solve_minimum_makespan(
            task,
            cores,
            accelerators,
            time_limit=time_limit,
            mip_gap=mip_gap,
            warm_start=warm_start,
        )
        makespan = solution.makespan
        starts = solution.start_times
        optimal = solution.optimal
        stats = {
            "variables": solution.variable_count,
            "constraints": solution.constraint_count,
            "horizon": solution.horizon,
            "warm_started": solution.warm_started,
        }

    verify_schedule(task, starts, cores, accelerators)
    lower = makespan_lower_bound(task, cores, accelerators)
    if makespan < lower - 1e-6:
        raise SolverError(
            f"solver returned makespan {makespan} below the lower bound {lower}"
        )
    return MakespanResult(
        makespan=float(makespan),
        start_times=starts,
        method=method,
        optimal=optimal,
        cores=cores,
        accelerators=accelerators,
        engine_stats=stats,
    )


def degraded_makespan_result(
    task: DagTask,
    cores: int,
    accelerators: int = 1,
    method: MakespanMethod = MakespanMethod.AUTO,
    reason: str = "budget-exhausted",
) -> MakespanResult:
    """Bound-sandwich fallback when the exact engines cannot be run.

    Produces a *verified* answer in list-scheduling time: the makespan is
    the best concrete list schedule (a feasible upper bound, replayed
    through :func:`verify_schedule` like every exact result), and
    ``engine_stats`` carries the sandwich -- ``lower_bound`` from
    :func:`makespan_lower_bound` and ``upper_bound`` equal to the returned
    makespan -- so callers can see exactly how loose the degradation is.
    The result is flagged ``degraded=True`` and ``optimal=False``; the
    service layer refuses to cache it as exact.
    """
    upper, starts = best_list_schedule(task, cores, accelerators)
    verify_schedule(task, starts, cores, accelerators)
    lower = makespan_lower_bound(task, cores, accelerators)
    return MakespanResult(
        makespan=float(upper),
        start_times=starts,
        method=method,
        optimal=False,
        cores=cores,
        accelerators=accelerators,
        engine_stats={
            "engine": "degraded-bounds",
            "lower_bound": float(lower),
            "upper_bound": float(upper),
            "reason": reason,
        },
        degraded=True,
    )
