"""Optimal (minimum) makespan computation for heterogeneous DAG tasks.

The paper compares its response-time bounds against the minimum makespan
returned by a CPLEX ILP (reference [13]'s formulation).  This subpackage
reproduces that oracle with freely available components:

* :mod:`repro.ilp.formulation` -- the time-indexed MILP;
* :mod:`repro.ilp.solver` -- the HiGHS (SciPy) backend;
* :mod:`repro.ilp.branch_and_bound` -- an independent exact search used to
  cross-check the ILP on small instances;
* :mod:`repro.ilp.bounds` -- cheap lower/upper bounds shared by both;
* :mod:`repro.ilp.makespan` -- the unified entry point
  :func:`~repro.ilp.makespan.minimum_makespan`;
* :mod:`repro.ilp.batch` -- the batched, memoised ensemble oracle
  :func:`~repro.ilp.batch.minimum_makespans_many` used by the sweeps.
"""

from .batch import minimum_makespans_many, oracle_cache_clear, oracle_cache_size
from .bounds import best_list_schedule, list_schedule_upper_bound, makespan_lower_bound
from .branch_and_bound import BranchAndBoundResult, branch_and_bound_makespan
from .formulation import TimeIndexedFormulation, build_formulation
from .makespan import MakespanMethod, MakespanResult, minimum_makespan, verify_schedule
from .solver import IlpSolution, solve_formulation, solve_minimum_makespan

__all__ = [
    "makespan_lower_bound",
    "list_schedule_upper_bound",
    "best_list_schedule",
    "minimum_makespans_many",
    "oracle_cache_clear",
    "oracle_cache_size",
    "TimeIndexedFormulation",
    "build_formulation",
    "IlpSolution",
    "solve_formulation",
    "solve_minimum_makespan",
    "BranchAndBoundResult",
    "branch_and_bound_makespan",
    "MakespanMethod",
    "MakespanResult",
    "minimum_makespan",
    "verify_schedule",
]
