"""Extension: several accelerator devices (paper future work (ii)).

The second future-work item of the paper is supporting "more devices in the
heterogeneous architecture".  This module models a DAG task whose offloaded
nodes are *partitioned over several accelerator devices* (e.g. a GPU and an
FPGA, or two DSP clusters), provides

* a sound response-time bound (:func:`response_time`) derived with the same
  chain-charging argument as :mod:`repro.extensions.multi_offload` -- an
  instant where the chain stalls is charged either to the ``m`` busy host
  cores or to the busy device the stalled node is assigned to;
* a load-balancing assignment heuristic (:func:`balance_devices`) that
  partitions offloaded nodes over the devices by longest-processing-time
  first, which is what a runtime would typically do;
* simulation support (:func:`simulate_multi_device`) on top of the
  multi-device-aware engine.

The bound intentionally does not try to exploit inter-device parallelism
(doing so requires per-device variants of Algorithm 1's synchronisation and
is genuine future research); it is the direct generalisation of the paper's
baseline reasoning and is proven safe by the property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ..analysis.results import ResponseTimeResult, Scenario
from ..core.exceptions import AnalysisError, ValidationError
from ..core.graph import DirectedAcyclicGraph, NodeId
from ..core.task import DagTask
from ..simulation.platform import Platform
from ..simulation.schedulers import SchedulingPolicy
from ..simulation.trace import ExecutionTrace

__all__ = [
    "MultiDeviceTask",
    "balance_devices",
    "response_time",
    "simulate_multi_device",
]


@dataclass
class MultiDeviceTask:
    """A sporadic DAG task whose offloaded nodes are spread over devices.

    Attributes
    ----------
    graph:
        The DAG; node weights are WCETs.
    device_assignment:
        Mapping ``node -> device index`` for the offloaded nodes; indices
        must form a contiguous range ``0 .. device_count - 1``.
    device_count:
        Number of accelerator devices of the platform.
    period, deadline, name:
        As in :class:`~repro.core.task.DagTask`.
    """

    graph: DirectedAcyclicGraph
    device_assignment: dict[NodeId, int] = field(default_factory=dict)
    device_count: int = 1
    period: Optional[float] = None
    deadline: Optional[float] = None
    name: str = "tau_devices"

    def __post_init__(self) -> None:
        if self.device_count < 1:
            raise ValidationError("device_count must be >= 1")
        for node, device in self.device_assignment.items():
            if node not in self.graph:
                raise ValidationError(
                    f"offloaded node {node!r} is not a node of the graph"
                )
            if not 0 <= device < self.device_count:
                raise ValidationError(
                    f"node {node!r} assigned to device {device}, but only "
                    f"{self.device_count} devices exist"
                )
        if self.deadline is None:
            self.deadline = self.period

    @property
    def offloaded_nodes(self) -> set[NodeId]:
        """Every node executed on some accelerator."""
        return set(self.device_assignment)

    def host_volume(self) -> float:
        """Total WCET of the nodes executed on the host."""
        return sum(
            self.graph.wcet(node)
            for node in self.graph.nodes()
            if node not in self.device_assignment
        )

    def device_volume(self, device: Optional[int] = None) -> float:
        """Total WCET offloaded to one device (or to all devices)."""
        return sum(
            self.graph.wcet(node)
            for node, assigned in self.device_assignment.items()
            if device is None or assigned == device
        )

    @property
    def volume(self) -> float:
        """``vol(G)``."""
        return self.graph.volume()

    @property
    def critical_path_length(self) -> float:
        """``len(G)``."""
        return self.graph.critical_path_length()


def balance_devices(
    task: DagTask | MultiDeviceTask,
    offloaded_nodes: Iterable[NodeId],
    device_count: int,
    period: Optional[float] = None,
    deadline: Optional[float] = None,
) -> MultiDeviceTask:
    """Partition offloaded nodes over devices by longest-processing-time first.

    A simple, deterministic heuristic: offloaded nodes are sorted by
    decreasing WCET and each is placed on the currently least-loaded device.

    Parameters
    ----------
    task:
        Source task (only its graph is used).
    offloaded_nodes:
        Nodes to offload.
    device_count:
        Number of available accelerator devices.
    period, deadline:
        Optional timing parameters of the resulting task (default to the
        source task's).
    """
    graph = task.graph.copy()
    nodes = list(offloaded_nodes)
    for node in nodes:
        if node not in graph:
            raise ValidationError(f"offloaded node {node!r} is not part of the task")
    loads = [0.0] * device_count
    assignment: dict[NodeId, int] = {}
    for node in sorted(nodes, key=lambda n: (-graph.wcet(n), repr(n))):
        device = min(range(device_count), key=lambda index: (loads[index], index))
        assignment[node] = device
        loads[device] += graph.wcet(node)
    return MultiDeviceTask(
        graph=graph,
        device_assignment=assignment,
        device_count=device_count,
        period=period if period is not None else task.period,
        deadline=deadline if deadline is not None else task.deadline,
        name=f"{task.name}@devices",
    )


def _max_host_workload_path(task: MultiDeviceTask) -> float:
    """Maximum host workload carried by any path of the DAG."""
    graph = task.graph
    offloaded = task.offloaded_nodes
    best: dict[NodeId, float] = {}
    for node in graph.topological_order():
        weight = 0.0 if node in offloaded else graph.wcet(node)
        incoming = max((best[p] for p in graph.predecessors(node)), default=0.0)
        best[node] = incoming + weight
    return max(best.values(), default=0.0)


def response_time(task: MultiDeviceTask, cores: int) -> ResponseTimeResult:
    """Sound response-time bound for a multi-device task.

    The chain-charging argument yields, for any work-conserving schedule,

    .. math::

        R \\le \\max_\\lambda \\Bigl[ host(\\lambda)\\bigl(1 - \\tfrac1m\\bigr) \\Bigr]
              + \\frac{vol_{host}}{m} + \\sum_d vol_{dev_d}

    where the sum runs over the devices.  Each device's workload enters
    undivided because a stalled offloaded chain node is only ever blocked by
    other work *on its own device*.
    """
    if not isinstance(cores, int) or cores < 1:
        raise AnalysisError(f"number of host cores must be a positive integer, got {cores!r}")
    host_volume = task.host_volume()
    device_volume_total = task.device_volume()
    heaviest_host_path = _max_host_workload_path(task)
    bound = (
        heaviest_host_path * (1.0 - 1.0 / cores)
        + host_volume / cores
        + device_volume_total
    )
    bound = max(bound, task.critical_path_length)
    per_device = {
        f"vol_dev_{device}": task.device_volume(device)
        for device in range(task.device_count)
    }
    return ResponseTimeResult(
        bound=bound,
        method="multi-device",
        scenario=Scenario.NOT_APPLICABLE,
        cores=cores,
        task_name=task.name,
        terms={
            "len": task.critical_path_length,
            "vol": task.volume,
            "vol_host": host_volume,
            "vol_dev": device_volume_total,
            "max_host_path": heaviest_host_path,
            "m": cores,
            "devices": float(task.device_count),
            **per_device,
        },
    )


def simulate_multi_device(
    task: MultiDeviceTask,
    cores: int,
    policy: Optional[SchedulingPolicy] = None,
) -> ExecutionTrace:
    """Simulate a multi-device task on ``m`` host cores plus its devices."""
    from ..simulation.engine import simulate

    platform = Platform(host_cores=cores, accelerators=task.device_count)
    dag_task = DagTask(
        graph=task.graph,
        offloaded_node=None,
        period=task.period,
        deadline=task.deadline,
        name=task.name,
    )
    return simulate(
        dag_task,
        platform,
        policy=policy,
        offload_enabled=True,
        device_assignment=dict(task.device_assignment),
    )
