"""Extension: DAG tasks with several offloaded nodes (paper future work (i)).

The paper's conclusions announce, as future work, support for "more tasks
assigned to the accelerator device".  This module provides a sound
response-time analysis and simulation support for that generalisation: a DAG
task in which a *set* of nodes is offloaded, all sharing the single
accelerator device (see :mod:`repro.extensions.multi_device` for several
devices).

Why Equation 1 stops being safe
-------------------------------
The classical bound ``R_hom = len(G) + (vol(G) - len(G))/m`` is proven by
charging every instant at which the chain under analysis is *not* executing
to ``m`` busy host cores.  With a single offloaded node that argument still
holds (the offloaded node never waits for its device).  With several
offloaded nodes it breaks: a chain node that is ready to run on the
accelerator may wait because the accelerator is busy with *another* offloaded
node while every host core idles, and that waiting time is *not* divided by
``m``.  ``tests/test_extensions.py`` exhibits a task whose simulated
makespan exceeds Equation 1 for exactly this reason.

The generalised bound
---------------------
Let ``host(lambda)`` (resp. ``dev(lambda)``) be the host (resp. offloaded)
workload of a path ``lambda``.  Following the same chain-charging argument,
any work-conserving schedule satisfies, for the chain ``lambda`` ending at
the last completion:

.. math::

    R \\le len(\\lambda)
        + \\frac{vol_{host}(G) - host(\\lambda)}{m}
        + \\bigl(vol_{dev}(G) - dev(\\lambda)\\bigr)

because an instant where the next chain node stalls has either all ``m``
cores busy with other host work, or the accelerator busy with other offloaded
work.  Since ``len(lambda) = host(lambda) + dev(lambda)`` the right-hand side
equals ``host(lambda)(1 - 1/m) + vol_host/m + vol_dev``, which is maximised
by the path with the largest *host* workload.  :func:`response_time`
computes exactly that maximum (a weighted longest path).  For a single
offloaded node the bound degenerates to
``R_hom`` with ``C_off`` moved out of the divided term, i.e. it is never
looser than Equation 2 evaluated on the original graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..analysis.results import ResponseTimeResult, Scenario
from ..core.exceptions import AnalysisError, ValidationError
from ..core.graph import DirectedAcyclicGraph, NodeId
from ..core.task import DagTask
from ..simulation.platform import Platform
from ..simulation.schedulers import SchedulingPolicy
from ..simulation.trace import ExecutionTrace

__all__ = ["MultiOffloadTask", "response_time", "simulate_multi_offload"]


@dataclass
class MultiOffloadTask:
    """A sporadic DAG task with a set of offloaded nodes on one accelerator.

    Attributes
    ----------
    graph:
        The DAG; node weights are WCETs.
    offloaded_nodes:
        The nodes executed on the accelerator device.  They share the single
        device, hence they serialise among themselves.
    period, deadline, name:
        As in :class:`~repro.core.task.DagTask`.
    """

    graph: DirectedAcyclicGraph
    offloaded_nodes: set[NodeId] = field(default_factory=set)
    period: Optional[float] = None
    deadline: Optional[float] = None
    name: str = "tau_multi"

    def __post_init__(self) -> None:
        self.offloaded_nodes = set(self.offloaded_nodes)
        for node in self.offloaded_nodes:
            if node not in self.graph:
                raise ValidationError(
                    f"offloaded node {node!r} is not a node of the graph"
                )
        if self.deadline is None:
            self.deadline = self.period

    @classmethod
    def from_task(cls, task: DagTask, extra_offloaded: Iterable[NodeId] = ()) -> "MultiOffloadTask":
        """Promote a single-offload task, optionally offloading more nodes."""
        offloaded = set(extra_offloaded)
        if task.offloaded_node is not None:
            offloaded.add(task.offloaded_node)
        return cls(
            graph=task.graph.copy(),
            offloaded_nodes=offloaded,
            period=task.period,
            deadline=task.deadline,
            name=task.name,
        )

    def as_dag_task(self) -> DagTask:
        """Return the underlying task with *no* offload designation.

        Used to drive the simulator, which receives the offload set through
        its ``device_assignment`` parameter instead.
        """
        return DagTask(
            graph=self.graph,
            offloaded_node=None,
            period=self.period,
            deadline=self.deadline,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Workload accounting
    # ------------------------------------------------------------------
    def host_volume(self) -> float:
        """Total WCET of the nodes executed on the host."""
        return sum(
            self.graph.wcet(node)
            for node in self.graph.nodes()
            if node not in self.offloaded_nodes
        )

    def device_volume(self) -> float:
        """Total WCET of the offloaded nodes."""
        return sum(self.graph.wcet(node) for node in self.offloaded_nodes)

    @property
    def volume(self) -> float:
        """``vol(G)``."""
        return self.graph.volume()

    @property
    def critical_path_length(self) -> float:
        """``len(G)``."""
        return self.graph.critical_path_length()


def _max_host_workload_path(task: MultiOffloadTask) -> float:
    """Maximum host workload carried by any source-to-sink path.

    Dynamic programming over a topological order with node weights equal to
    the WCET for host nodes and ``0`` for offloaded nodes.
    """
    graph = task.graph
    best: dict[NodeId, float] = {}
    for node in graph.topological_order():
        weight = 0.0 if node in task.offloaded_nodes else graph.wcet(node)
        incoming = max((best[p] for p in graph.predecessors(node)), default=0.0)
        best[node] = incoming + weight
    return max(best.values(), default=0.0)


def response_time(task: MultiOffloadTask, cores: int) -> ResponseTimeResult:
    """Sound response-time bound for a multi-offload task (see module docs).

    The bound is

    ``max over paths lambda of host(lambda) * (1 - 1/m) + vol_host/m + vol_dev``

    and is valid for every work-conserving schedule in which offloaded nodes
    execute on the (single) accelerator and host nodes on the ``m`` cores.
    """
    if not isinstance(cores, int) or cores < 1:
        raise AnalysisError(f"number of host cores must be a positive integer, got {cores!r}")
    host_volume = task.host_volume()
    device_volume = task.device_volume()
    heaviest_host_path = _max_host_workload_path(task)
    bound = (
        heaviest_host_path * (1.0 - 1.0 / cores)
        + host_volume / cores
        + device_volume
    )
    # The bound can never be smaller than the critical path itself; taking the
    # maximum costs nothing and guards the degenerate all-offloaded case.
    bound = max(bound, task.critical_path_length)
    return ResponseTimeResult(
        bound=bound,
        method="multi-offload",
        scenario=Scenario.NOT_APPLICABLE,
        cores=cores,
        task_name=task.name,
        terms={
            "len": task.critical_path_length,
            "vol": task.volume,
            "vol_host": host_volume,
            "vol_dev": device_volume,
            "max_host_path": heaviest_host_path,
            "m": cores,
        },
    )


def simulate_multi_offload(
    task: MultiOffloadTask,
    cores: int,
    policy: Optional[SchedulingPolicy] = None,
) -> ExecutionTrace:
    """Simulate a multi-offload task on ``m`` cores plus one accelerator.

    All offloaded nodes are assigned to accelerator ``0``; they serialise on
    it, which is exactly the behaviour the generalised bound accounts for.
    """
    from ..simulation.engine import simulate

    platform = Platform(host_cores=cores, accelerators=1)
    assignment = {node: 0 for node in task.offloaded_nodes}
    return simulate(
        task.as_dag_task(),
        platform,
        policy=policy,
        offload_enabled=True,
        device_assignment=assignment,
    )
