"""Extensions covering the paper's announced future work.

* :mod:`repro.extensions.multi_offload` -- several offloaded nodes sharing
  the single accelerator device (future work item (i));
* :mod:`repro.extensions.multi_device` -- offloaded nodes partitioned over
  several accelerator devices (future work item (ii)).

Both provide a *sound* response-time bound (proven safe against the
simulator by property tests) together with simulation support; tightening
them with per-device synchronisation points in the spirit of Algorithm 1 is
left as genuine research.
"""

from .multi_device import (
    MultiDeviceTask,
    balance_devices,
    simulate_multi_device,
)
from .multi_device import response_time as multi_device_response_time
from .multi_offload import (
    MultiOffloadTask,
    simulate_multi_offload,
)
from .multi_offload import response_time as multi_offload_response_time

__all__ = [
    "MultiOffloadTask",
    "multi_offload_response_time",
    "simulate_multi_offload",
    "MultiDeviceTask",
    "multi_device_response_time",
    "balance_devices",
    "simulate_multi_device",
]
