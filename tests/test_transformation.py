"""Unit tests for Algorithm 1 (:mod:`repro.core.transformation`)."""

from __future__ import annotations

import pytest

from repro.core.examples import figure1_task, figure2_expected_edges, figure3_task
from repro.core.exceptions import TransformationError
from repro.core.task import DagTask
from repro.core.transformation import transform
from repro.core.validation import validate_task


class TestFigure1Example:
    """The transformation of the motivating example (Figure 1 -> Figure 2)."""

    def test_transformed_edge_set_matches_figure2(self):
        transformed = transform(figure1_task())
        assert sorted(map(tuple, transformed.graph.edges())) == sorted(
            figure2_expected_edges()
        )

    def test_sync_node_has_zero_wcet(self):
        transformed = transform(figure1_task())
        assert transformed.graph.wcet("v_sync") == 0

    def test_direct_predecessors(self):
        transformed = transform(figure1_task())
        assert transformed.direct_predecessors == {"v4"}
        assert transformed.predecessors == {"v1", "v4"}
        assert transformed.successors == {"v5"}

    def test_gpar_nodes_and_metrics(self):
        transformed = transform(figure1_task())
        assert transformed.gpar_nodes == {"v2", "v3"}
        assert transformed.gpar_volume() == 10
        assert transformed.gpar_length() == 6

    def test_volume_is_preserved_and_length_grows(self):
        transformed = transform(figure1_task())
        assert transformed.transformed_volume() == 18
        assert transformed.transformed_length() == 10
        assert transformed.critical_path_elongation() == 2

    def test_offloaded_not_on_critical_path(self):
        transformed = transform(figure1_task())
        assert not transformed.offloaded_on_critical_path()

    def test_rerouted_edges_recorded(self):
        transformed = transform(figure1_task())
        assert set(transformed.rerouted_edges) == {("v1", "v2"), ("v1", "v3")}

    def test_transformed_task_keeps_timing_parameters(self):
        transformed = transform(figure1_task(period=50, deadline=40))
        assert transformed.task.period == 50
        assert transformed.task.deadline == 40
        assert transformed.task.offloaded_node == "v_off"
        assert transformed.task.name.endswith("'")

    def test_original_task_not_mutated(self):
        task = figure1_task()
        edges_before = sorted(map(tuple, task.graph.edges()))
        transform(task)
        assert sorted(map(tuple, task.graph.edges())) == edges_before
        assert "v_sync" not in task.graph


class TestFigure3Example:
    """The larger example exercising every branch of Algorithm 1."""

    def test_direct_and_indirect_predecessors(self):
        transformed = transform(figure3_task())
        assert transformed.direct_predecessors == {"v8", "v9"}
        assert transformed.predecessors == {"v1", "v3", "v8", "v9"}
        assert transformed.successors == {"v10"}

    def test_gpar_contains_exactly_the_parallel_nodes(self):
        task = figure3_task()
        transformed = transform(task)
        assert transformed.gpar_nodes == {"v2", "v4", "v5", "v6", "v7", "v11"}
        assert transformed.gpar_nodes == task.parallel_nodes_to_offloaded()

    def test_direct_predecessor_edges_rerouted_to_sync(self):
        transformed = transform(figure3_task())
        graph = transformed.graph
        # (v8, v_off) and (v9, v_off) replaced by edges to v_sync.
        assert not graph.has_edge("v8", "v_off")
        assert not graph.has_edge("v9", "v_off")
        assert graph.has_edge("v8", "v_sync")
        assert graph.has_edge("v9", "v_sync")
        assert graph.has_edge("v_sync", "v_off")

    def test_parallel_edges_of_direct_predecessor_rerouted(self):
        transformed = transform(figure3_task())
        graph = transformed.graph
        # (v8, v11) must become (v_sync, v11).
        assert not graph.has_edge("v8", "v11")
        assert graph.has_edge("v_sync", "v11")

    def test_parallel_edges_of_indirect_predecessors_rerouted(self):
        transformed = transform(figure3_task())
        graph = transformed.graph
        # (v1, v2) and (v3, v7) must become (v_sync, v2) and (v_sync, v7).
        assert not graph.has_edge("v1", "v2")
        assert not graph.has_edge("v3", "v7")
        assert graph.has_edge("v_sync", "v2")
        assert graph.has_edge("v_sync", "v7")

    def test_edges_between_predecessors_are_kept(self):
        transformed = transform(figure3_task())
        graph = transformed.graph
        assert graph.has_edge("v1", "v3")
        assert graph.has_edge("v3", "v8")
        assert graph.has_edge("v3", "v9")

    def test_gpar_edges_come_from_the_original_edge_set(self):
        transformed = transform(figure3_task())
        assert transformed.gpar.has_edge("v2", "v4")
        assert transformed.gpar.has_edge("v7", "v5")
        assert transformed.gpar.has_edge("v11", "v6")
        assert transformed.gpar.edge_count == 3

    def test_transformed_task_is_model_compliant(self):
        transformed = transform(figure3_task())
        assert validate_task(transformed.task).is_valid


class TestGuaranteeProperty:
    """The whole point of v_sync: G_par cannot start before v_off is ready."""

    @pytest.mark.parametrize("factory", [figure1_task, figure3_task])
    def test_every_gpar_node_is_a_descendant_of_sync(self, factory):
        transformed = transform(factory())
        graph = transformed.graph
        descendants = graph.descendants(transformed.sync_node)
        assert transformed.gpar_nodes <= descendants
        assert transformed.offloaded_node in descendants

    @pytest.mark.parametrize("factory", [figure1_task, figure3_task])
    def test_sync_is_preceded_exactly_by_offloaded_direct_predecessors(self, factory):
        transformed = transform(factory())
        graph = transformed.graph
        assert graph.predecessors(transformed.sync_node) == transformed.direct_predecessors

    @pytest.mark.parametrize("factory", [figure1_task, figure3_task])
    def test_offloaded_node_only_predecessor_is_sync(self, factory):
        transformed = transform(factory())
        graph = transformed.graph
        assert graph.predecessors(transformed.offloaded_node) == {transformed.sync_node}


class TestErrorsAndOptions:
    def test_homogeneous_task_cannot_be_transformed(self):
        task = DagTask.from_wcets({"a": 1, "b": 2}, [("a", "b")])
        with pytest.raises(TransformationError):
            transform(task)

    def test_sync_identifier_collision_rejected(self):
        task = figure1_task()
        with pytest.raises(TransformationError):
            transform(task, sync_node="v1")

    def test_custom_sync_identifier(self):
        transformed = transform(figure1_task(), sync_node="barrier")
        assert transformed.sync_node == "barrier"
        assert "barrier" in transformed.graph

    def test_offloaded_node_is_source(self):
        task = DagTask.from_wcets(
            {"v_off": 3, "a": 2, "b": 1},
            [("v_off", "a"), ("a", "b")],
            offloaded_node="v_off",
        )
        transformed = transform(task)
        # No predecessors: the sync node simply precedes v_off; G_par is empty.
        assert transformed.gpar_nodes == set()
        assert transformed.graph.has_edge("v_sync", "v_off")
        assert transformed.transformed_volume() == task.volume

    def test_offloaded_node_is_sink(self):
        task = DagTask.from_wcets(
            {"a": 2, "b": 3, "v_off": 4},
            [("a", "b"), ("a", "v_off")],
            offloaded_node="v_off",
        )
        transformed = transform(task)
        assert transformed.gpar_nodes == {"b"}
        assert transformed.graph.predecessors("v_off") == {"v_sync"}
        assert transformed.graph.has_edge("v_sync", "b")

    def test_reduce_transitive_flag(self):
        # Two ordered parallel nodes that both lose every predecessor create a
        # transitive edge v_sync -> x -> y plus v_sync -> y.
        task = DagTask.from_wcets(
            {"s": 1, "p": 2, "x": 3, "y": 4, "v_off": 5, "t": 1},
            [
                ("s", "p"),
                ("s", "x"),
                ("s", "y"),
                ("x", "y"),
                ("p", "v_off"),
                ("v_off", "t"),
                ("y", "t"),
            ],
            offloaded_node="v_off",
        )
        # NOTE: (s, y) together with (s, x) and (x, y) is transitive in the
        # *input*, which violates the model; drop it first to stay compliant.
        task.graph.remove_edge("s", "y")
        reduced = transform(task, reduce_transitive=True)
        raw = transform(task, reduce_transitive=False)
        assert reduced.graph.transitive_edges() == []
        assert raw.transformed_volume() == reduced.transformed_volume()
        assert raw.transformed_length() == reduced.transformed_length()

    def test_single_node_plus_offload(self):
        task = DagTask.from_wcets(
            {"a": 2, "v_off": 3}, [("a", "v_off")], offloaded_node="v_off"
        )
        transformed = transform(task)
        assert transformed.gpar_nodes == set()
        assert transformed.transformed_length() == 5
        assert transformed.graph.has_edge("a", "v_sync")
