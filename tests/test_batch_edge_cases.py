"""Edge cases of the batched simulation and generation entry points.

``simulate_many`` and ``chunked_offload_fraction_sweep`` sit under every
sweep driver; these tests pin their behaviour on the degenerate inputs a
driver can produce -- empty ensembles, chunk sizes larger than the
ensemble, more workers than work, single-policy batches, zero-node graphs
-- so refactors of the batching layers cannot silently change them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.graph import DirectedAcyclicGraph
from repro.core.task import DagTask
from repro.generator.config import OffloadConfig
from repro.generator.presets import SMALL_TASKS
from repro.generator.sweep import chunked_offload_fraction_sweep
from repro.simulation.batch import simulate_many
from repro.simulation.engine import simulate
from repro.simulation.schedulers import BreadthFirstPolicy, RandomPolicy

from strategies import make_random_heterogeneous_task


def _wcet_tables(point):
    return [task.graph.wcets() for task in point.tasks]


class TestSimulateManyEdgeCases:
    def test_empty_ensemble(self):
        assert simulate_many([], [2]).shape == (0, 1, 1)
        assert simulate_many([], [2, 4], [BreadthFirstPolicy()], jobs=4).shape == (
            0,
            2,
            1,
        )
        assert simulate_many([], [2], makespans_only=False) == []

    def test_chunk_size_larger_than_ensemble(self):
        tasks = [make_random_heterogeneous_task(seed, 0.2, n_max=15) for seed in range(3)]
        small = simulate_many(tasks, [2], chunk_size=2)
        huge = simulate_many(tasks, [2], chunk_size=500)
        # Chunking is part of the determinism contract only through spawned
        # policy streams; a deterministic policy must not see it at all.
        assert np.array_equal(small, huge)
        for t, task in enumerate(tasks):
            assert huge[t, 0, 0] == simulate(task, 2).makespan()

    def test_jobs_greater_than_cell_count(self):
        task = make_random_heterogeneous_task(5, 0.3, n_max=15)
        serial = simulate_many([task], [2], RandomPolicy(7), root_seed=3)
        oversubscribed = simulate_many(
            [task], [2], RandomPolicy(7), root_seed=3, jobs=16
        )
        assert np.array_equal(serial, oversubscribed)

    def test_single_policy_batch_accepts_scalar_arguments(self):
        task = make_random_heterogeneous_task(2, 0.2, n_max=15)
        grid = simulate_many([task], 2, BreadthFirstPolicy())
        assert grid.shape == (1, 1, 1)
        assert grid[0, 0, 0] == simulate(task, 2).makespan()

    def test_zero_node_graph_lane(self):
        empty = DagTask(graph=DirectedAcyclicGraph())
        task = make_random_heterogeneous_task(4, 0.2, n_max=15)
        grid = simulate_many([empty, task], [2, 4])
        assert grid.shape == (2, 2, 1)
        assert grid[0].tolist() == [[0.0], [0.0]]
        assert grid[1, 0, 0] == simulate(task, 2).makespan()

    def test_invalid_arguments(self):
        task = make_random_heterogeneous_task(1, 0.2, n_max=10)
        with pytest.raises(ValueError):
            simulate_many([task], [2], chunk_size=0)
        with pytest.raises(ValueError):
            simulate_many([task], [])
        with pytest.raises(ValueError):
            simulate_many([task], [2], [])
        with pytest.raises(ValueError):
            simulate_many([task], [2], engine="warp")


class TestChunkedSweepEdgeCases:
    def _sweep(self, **kwargs):
        defaults = dict(
            fractions=[0.1],
            dags_per_point=3,
            generator_config=SMALL_TASKS,
            offload_config=OffloadConfig(),
            root_seed=1,
        )
        defaults.update(kwargs)
        return chunked_offload_fraction_sweep(**defaults)

    def test_empty_ensemble_and_empty_grid(self):
        points = self._sweep(dags_per_point=0)
        assert [len(point) for point in points] == [0]
        assert self._sweep(fractions=[]) == []

    def test_chunk_size_larger_than_ensemble(self):
        reference = self._sweep(chunk_size=1)
        oversized = self._sweep(chunk_size=500)
        # Chunk boundaries seed the generator streams, so the draws are
        # allowed to differ between chunk sizes -- but each configuration
        # must be internally deterministic.
        assert _wcet_tables(oversized[0]) == _wcet_tables(self._sweep(chunk_size=500)[0])
        assert len(reference[0]) == len(oversized[0]) == 3

    def test_jobs_greater_than_chunk_count_draw_identical(self):
        serial = self._sweep(chunk_size=2)
        parallel = self._sweep(chunk_size=2, jobs=16)
        assert _wcet_tables(serial[0]) == _wcet_tables(parallel[0])

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            self._sweep(chunk_size=0)
