"""Cross-oracle property-test harness for the exact-makespan subsystem.

PR 2 rebuilt the branch-and-bound around dominance rules and added a
warm-started ILP path; every speed-up here is only trustworthy because this
harness proves the independently implemented oracles agree:

* pruned branch-and-bound == unpruned reference engine,
* branch-and-bound == cold HiGHS ILP == warm HiGHS ILP,
* all of the above == the factorial brute-force oracle
  (``tests/exhaustive.py``) on tiny instances,
* and every exact makespan is sandwiched as
  ``makespan_lower_bound <= exact <= list_schedule_upper_bound``
  across generator presets, core counts and accelerator counts.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.examples import figure1_task
from repro.generator.config import GeneratorConfig
from repro.generator.presets import SMALL_TASKS, SMALL_TASKS_FIG7_M2
from repro.ilp.bounds import (
    best_list_schedule,
    list_schedule_upper_bound,
    makespan_lower_bound,
)
from repro.ilp.branch_and_bound import branch_and_bound_makespan
from repro.ilp.makespan import MakespanMethod, minimum_makespan, verify_schedule
from repro.ilp.solver import solve_minimum_makespan

from exhaustive import exhaustive_minimum_makespan
from strategies import make_tiny_integer_task, tiny_oracle_parameters

#: Generator presets exercised by the sandwich invariant, clamped to exact
#: solver sizes.  ``wide`` deliberately stresses a different structural
#: region (short, bushy DAGs) than the paper presets.
SANDWICH_PRESETS = {
    "small": replace(SMALL_TASKS, n_min=4, n_max=9, c_max=8),
    "small-fig7-m2": replace(SMALL_TASKS_FIG7_M2, n_min=4, n_max=9, c_max=8),
    "wide": GeneratorConfig(
        p_par=0.8, n_par=3, max_depth=2, n_min=4, n_max=9, c_min=1, c_max=8
    ),
}


class TestOracleAgreement:
    """``branch_and_bound == ILP == exhaustive`` on random tiny DAGs."""

    @settings(max_examples=20, deadline=None)
    @given(parameters=tiny_oracle_parameters())
    def test_all_four_oracles_agree(self, parameters):
        seed, fraction, cores, accelerators = parameters
        task = make_tiny_integer_task(seed, fraction)
        exhaustive = exhaustive_minimum_makespan(task, cores, accelerators)
        pruned = branch_and_bound_makespan(task, cores, accelerators)
        reference = branch_and_bound_makespan(
            task, cores, accelerators, pruning=False
        )
        cold = solve_minimum_makespan(task, cores, accelerators, warm_start=False)
        warm = solve_minimum_makespan(task, cores, accelerators, warm_start=True)
        assert pruned.optimal and reference.optimal
        assert pruned.makespan == reference.makespan == exhaustive
        assert cold.makespan == pytest.approx(exhaustive)
        assert warm.makespan == pytest.approx(exhaustive)

    def test_pruning_shrinks_the_search_at_least_fivefold(self):
        # On trivially small instances the two engines count a handful of
        # states differently, so the reduction is asserted in aggregate over
        # a deterministic ensemble at oracle-relevant sizes (the per-PR
        # acceptance threshold of BENCH_PR2.json, reproduced at test scale).
        total_pruned = 0
        total_reference = 0
        for seed in range(12):
            task = make_tiny_integer_task(seed, 0.25, n_max=9, c_max=6)
            for cores in (1, 2, 4):
                pruned = branch_and_bound_makespan(task, cores)
                reference = branch_and_bound_makespan(task, cores, pruning=False)
                assert pruned.makespan == reference.makespan
                total_pruned += pruned.explored_states
                total_reference += reference.explored_states
        assert total_pruned * 5 <= total_reference

    @settings(max_examples=15, deadline=None)
    @given(parameters=tiny_oracle_parameters())
    def test_witness_schedules_are_legal_and_achieve_the_makespan(
        self, parameters
    ):
        seed, fraction, cores, accelerators = parameters
        task = make_tiny_integer_task(seed, fraction)
        for method in (MakespanMethod.BRANCH_AND_BOUND, MakespanMethod.ILP):
            result = minimum_makespan(task, cores, accelerators, method=method)
            verify_schedule(task, result.start_times, cores, accelerators)
            achieved = max(
                result.start_times[node] + task.graph.wcet(node)
                for node in task.graph.nodes()
            )
            assert achieved == pytest.approx(result.makespan)

    def test_figure1_worked_example_agrees_across_oracles(self):
        task = figure1_task()
        assert exhaustive_minimum_makespan(task, 2) == 8
        assert branch_and_bound_makespan(task, 2).makespan == 8
        assert branch_and_bound_makespan(task, 2, pruning=False).makespan == 8
        assert solve_minimum_makespan(task, 2, warm_start=False).makespan == 8

    def test_zero_wcet_source_regression(self):
        # Regression: the simulator's seed loop used to read in_degree live
        # while instant-node resolution mutated it, double-executing one
        # node and dropping another -- the list-schedule incumbent then had
        # a missing node (KeyError in the branch-and-bound) and an invalid
        # below-optimum "upper bound".
        from repro.core.task import DagTask
        from repro.simulation.engine import simulate

        task = DagTask.from_wcets(
            {0: 3, 1: 0, 2: 3, 3: 3, 4: 1, 5: 1},
            [(0, 4), (1, 3), (1, 2), (2, 3), (2, 5)],
        )
        trace = simulate(task, 3, offload_enabled=False)
        assert sorted(record.node for record in trace.executions) == [
            0, 1, 2, 3, 4, 5,
        ]
        optimum = exhaustive_minimum_makespan(task, 3)
        assert optimum == 6
        assert branch_and_bound_makespan(task, 3).makespan == optimum
        assert branch_and_bound_makespan(task, 3, pruning=False).makespan == optimum
        assert solve_minimum_makespan(task, 3, warm_start=False).makespan == optimum
        assert solve_minimum_makespan(task, 3, warm_start=True).makespan == optimum


class TestSandwichInvariant:
    """``lower bound <= exact <= list-schedule upper bound`` everywhere."""

    @pytest.mark.parametrize("preset_name", sorted(SANDWICH_PRESETS))
    @pytest.mark.parametrize("cores", [1, 2, 3, 8])
    def test_sandwich_across_presets_and_core_counts(self, preset_name, cores):
        import numpy as np

        from repro.generator.offload import make_heterogeneous
        from repro.generator.config import OffloadConfig
        from repro.generator.random_dag import DagStructureGenerator

        config = SANDWICH_PRESETS[preset_name]
        preset_index = sorted(SANDWICH_PRESETS).index(preset_name)
        rng = np.random.default_rng(1000 * cores + preset_index)
        for index in range(4):
            task = DagStructureGenerator(config, rng).generate_task()
            task = make_heterogeneous(
                task, OffloadConfig(), rng, target_fraction=0.2
            )
            task = task.with_offloaded_wcet(
                max(1.0, float(round(task.offloaded_wcet)))
            )
            exact = minimum_makespan(task, cores).makespan
            lower = makespan_lower_bound(task, cores)
            upper = list_schedule_upper_bound(task, cores)
            assert lower - 1e-9 <= exact <= upper + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(parameters=tiny_oracle_parameters())
    def test_sandwich_on_random_tiny_tasks(self, parameters):
        seed, fraction, cores, accelerators = parameters
        task = make_tiny_integer_task(seed, fraction)
        exact = minimum_makespan(task, cores, accelerators).makespan
        lower = makespan_lower_bound(task, cores, accelerators)
        upper = list_schedule_upper_bound(task, cores, accelerators)
        assert lower - 1e-9 <= exact <= upper + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        cores=st.sampled_from([1, 2, 4]),
    )
    def test_best_list_schedule_witness_matches_its_makespan(self, seed, cores):
        task = make_tiny_integer_task(seed, 0.3)
        makespan, starts = best_list_schedule(task, cores)
        verify_schedule(task, starts, cores)
        achieved = max(
            starts[node] + task.graph.wcet(node) for node in task.graph.nodes()
        )
        assert achieved == pytest.approx(makespan)


class TestWarmStartModelReduction:
    """The warm start must shrink the model, never change the optimum."""

    def test_warm_path_honours_the_integer_wcet_contract(self):
        # Regression: the warm-start short circuit used to return before any
        # validation, silently accepting fractional WCETs the cold model
        # refuses.
        from repro.core.exceptions import SolverError
        from repro.core.task import DagTask

        task = DagTask.from_wcets({"a": 2.5}, [])
        with pytest.raises(SolverError):
            solve_minimum_makespan(task, 1, warm_start=False)
        with pytest.raises(SolverError):
            solve_minimum_makespan(task, 1, warm_start=True)
        with pytest.raises(SolverError):
            solve_minimum_makespan(figure1_task(), 0, warm_start=True)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_warm_model_is_never_larger(self, seed):
        task = make_tiny_integer_task(seed, 0.3, n_max=8, c_max=6)
        cold = solve_minimum_makespan(task, 2, warm_start=False)
        warm = solve_minimum_makespan(task, 2, warm_start=True)
        assert warm.makespan == pytest.approx(cold.makespan)
        assert warm.variable_count <= cold.variable_count
        assert warm.warm_started and not cold.warm_started
