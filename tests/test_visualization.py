"""Tests for the ASCII visualisation helpers (:mod:`repro.visualization`)."""

from __future__ import annotations

from repro.core.examples import figure1_task, figure3_task
from repro.core.transformation import transform
from repro.simulation.engine import simulate
from repro.simulation.platform import Platform
from repro.simulation.trace import ExecutionTrace
from repro.visualization.ascii_art import (
    describe_task,
    describe_transformation,
    render_gantt,
)


class TestDescribeTask:
    def test_mentions_every_node_and_the_metrics(self):
        task = figure1_task(period=30)
        text = describe_task(task)
        for node in task.graph.nodes():
            assert str(node) in text
        assert "vol(G) = 18" in text
        assert "len(G) = 8" in text
        assert "offloaded node = v_off" in text
        assert "period T = 30" in text

    def test_homogeneous_task_has_no_offload_line(self):
        text = describe_task(figure1_task().as_homogeneous())
        assert "offloaded node" not in text


class TestDescribeTransformation:
    def test_summarises_the_algorithm_outcome(self):
        transformed = transform(figure1_task())
        text = describe_transformation(transformed)
        assert "v_sync" in text
        assert "len(G') = 10" in text
        assert "|G_par| = 2" in text
        assert "rerouted" in text


class TestRenderGantt:
    def test_contains_resources_nodes_and_makespan(self):
        trace = simulate(figure1_task(), Platform(2, 1))
        art = render_gantt(trace)
        assert "core0" in art and "core1" in art and "acc0" in art
        assert "makespan = 12" in art
        assert "v3" in art

    def test_zero_wcet_nodes_listed_separately(self):
        transformed = transform(figure1_task())
        trace = simulate(transformed.task, Platform(2, 1))
        art = render_gantt(trace)
        assert "v_sync@" in art

    def test_empty_schedule(self):
        trace = ExecutionTrace(task=figure1_task(), platform=Platform(1, 1))
        assert render_gantt(trace) == "(empty schedule)"

    def test_width_is_respected(self):
        trace = simulate(figure3_task(), Platform(4, 1))
        art = render_gantt(trace, width=40)
        body_lines = [line for line in art.splitlines() if line.startswith("core")]
        assert body_lines
        assert all(len(line) <= 40 + 10 for line in body_lines)
