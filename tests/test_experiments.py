"""Tests for the experiment drivers and result containers (:mod:`repro.experiments`)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.base import ExperimentResult, ExperimentSeries
from repro.experiments.config import ExperimentScale, paper_scale, quick_scale
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.runner import available_experiments, run_all, run_experiment
from repro.experiments.tables import format_table, render_result, to_csv, write_csv
from repro.experiments.worked_example import EXPECTED_VALUES, run_worked_example

#: A deliberately tiny scale so the whole module runs in a few seconds.
TINY = ExperimentScale(
    dags_per_point=5,
    core_counts=(2, 8),
    fractions=[0.02, 0.15, 0.40],
    small_task_fractions=[0.05, 0.35],
    ilp_node_range=(3, 9),
    ilp_wcet_max=6,
    ilp_time_limit=10.0,
    seed=7,
)


class TestSeriesAndResult:
    def test_series_append_and_lookup(self):
        series = ExperimentSeries(label="m=2")
        series.append(0.1, 5.0)
        series.append(0.2, -1.0)
        assert len(series) == 2
        assert series.y_at(0.2) == -1.0
        with pytest.raises(KeyError):
            series.y_at(0.9)

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSeries(label="bad", x=[1.0], y=[])

    def test_crossover_detection(self):
        series = ExperimentSeries(label="m=2", x=[0.1, 0.2, 0.3], y=[-4.0, -1.0, 2.0])
        crossover = series.crossover()
        assert crossover == pytest.approx(0.2 + 0.1 / 3)
        flat = ExperimentSeries(label="none", x=[0.1, 0.2], y=[1.0, 2.0])
        assert flat.crossover() is None

    def test_crossover_at_exact_zero_sample(self):
        series = ExperimentSeries(label="z", x=[0.1, 0.2], y=[0.0, 3.0])
        assert series.crossover() == 0.1

    def test_max_and_min_points(self):
        series = ExperimentSeries(label="m", x=[1, 2, 3], y=[5.0, 9.0, 2.0])
        assert series.max_point() == (2, 9.0)
        assert series.min_point() == (3, 2.0)
        with pytest.raises(ValueError):
            ExperimentSeries(label="empty").max_point()

    def test_result_rows_and_labels(self):
        result = ExperimentResult(name="demo", title="demo", x_label="x", y_label="y")
        result.add_series(ExperimentSeries(label="a", x=[1.0, 2.0], y=[10.0, 20.0]))
        result.add_series(ExperimentSeries(label="b", x=[2.0], y=[99.0]))
        rows = result.rows()
        assert [row["x"] for row in rows] == [1.0, 2.0]
        assert rows[1]["b"] == 99.0
        assert rows[0]["b"] != rows[0]["b"]  # NaN for the missing point
        assert result.labels() == ["a", "b"]
        assert result.series_by_label("b").y == [99.0]
        with pytest.raises(KeyError):
            result.series_by_label("c")

    def test_json_round_trip(self, tmp_path):
        result = ExperimentResult(name="demo", title="t", x_label="x", y_label="y")
        result.add_series(ExperimentSeries(label="a", x=[1.0], y=[2.0]))
        path = tmp_path / "result.json"
        result.to_json(path)
        loaded = ExperimentResult.from_json(path)
        assert loaded.name == "demo"
        assert loaded.series[0].label == "a"
        assert loaded.series[0].y == [2.0]
        # Round trip through a plain string as well.
        assert ExperimentResult.from_json(result.to_json()).name == "demo"


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "22.25" in lines[3] or "22.2" in lines[3]

    def test_render_result_contains_labels(self):
        result = ExperimentResult(name="demo", title="My Title", x_label="x", y_label="y")
        result.add_series(ExperimentSeries(label="m=2", x=[1.0], y=[2.0]))
        text = render_result(result)
        assert "My Title" in text
        assert "m=2" in text

    def test_csv_export(self, tmp_path):
        result = ExperimentResult(name="demo", title="t", x_label="x", y_label="y")
        result.add_series(ExperimentSeries(label="a", x=[1.0, 2.0], y=[3.0, 4.0]))
        text = to_csv(result)
        assert text.splitlines()[0] == "x,a"
        path = write_csv(result, tmp_path / "out.csv")
        assert path.read_text().startswith("x,a")


class TestScales:
    def test_quick_and_paper_scales(self):
        quick = quick_scale()
        paper = paper_scale()
        assert paper.dags_per_point == 100
        assert paper.core_counts == (2, 4, 8, 16)
        assert quick.dags_per_point < paper.dags_per_point
        assert quick.ilp_wcet_max <= paper.ilp_wcet_max

    def test_with_helpers(self):
        scale = quick_scale().with_seed(99).with_dags_per_point(3)
        assert scale.seed == 99
        assert scale.dags_per_point == 3


class TestWorkedExample:
    def test_every_quoted_number_is_reproduced(self):
        result = run_worked_example()
        values = result.series[0].metadata["values"]
        for name, expected in EXPECTED_VALUES.items():
            assert values[name] == expected, name

    def test_result_structure(self):
        result = run_worked_example(cores=2)
        assert result.name == "worked-example"
        assert len(result.series) == 1
        assert len(result.series[0]) == len(EXPECTED_VALUES)


class TestFigureDrivers:
    def test_figure6_structure_and_shape(self):
        result = run_figure6(TINY)
        assert result.labels() == ["m=2", "m=8"]
        for series in result.series:
            assert len(series) == len(TINY.fractions)
        # The transformation must pay off for large offloaded fractions.
        assert result.series_by_label("m=2").y[-1] > 0

    def test_figure8_percentages_sum_to_100(self):
        result = run_figure8(TINY)
        for cores in TINY.core_counts:
            for index in range(len(TINY.fractions)):
                total = sum(
                    result.series_by_label(f"scenario {label} m={cores}").y[index]
                    for label in ("1", "2.1", "2.2")
                )
                assert total == pytest.approx(100.0)

    def test_figure8_scenario1_dominates_small_fractions(self):
        result = run_figure8(TINY)
        first = result.series_by_label("scenario 1 m=2").y[0]
        last = result.series_by_label("scenario 1 m=2").y[-1]
        assert first > last

    def test_figure9_gain_grows_with_offload_for_m2(self):
        result = run_figure9(TINY)
        series = result.series_by_label("m=2")
        assert series.y[-1] > series.y[0]
        assert series.metadata["max_observed_difference"] >= max(series.y)

    def test_figure9_gain_ordering_between_core_counts(self):
        result = run_figure9(TINY)
        # At the largest fraction the m=2 gain exceeds the m=8 gain (the
        # interference term is divided by m).
        assert (
            result.series_by_label("m=2").y[-1]
            > result.series_by_label("m=8").y[-1]
        )


class TestFigure7Driver:
    def test_figure7_increments_are_non_negative_and_shrink_for_het(self):
        from repro.experiments.figure7 import node_range_for_cores, run_figure7

        scale = replace(TINY, core_counts=(2,), dags_per_point=3)
        result = run_figure7(scale)
        het = result.series_by_label("R_het m=2")
        hom = result.series_by_label("R_hom m=2")
        # Upper bounds can never undercut the optimal makespan.
        assert all(value >= -1e-6 for value in het.y)
        assert all(value >= -1e-6 for value in hom.y)
        # The heterogeneous bound tightens as the offloaded share grows.
        assert het.y[-1] <= het.y[0] + 1e-9
        # Node ranges follow the paper's scheme (small for m=2, larger above).
        assert node_range_for_cores(scale, 2) == scale.ilp_node_range
        assert node_range_for_cores(scale, 8)[0] >= scale.ilp_node_range[1]


class TestRunner:
    def test_available_experiments(self):
        names = available_experiments()
        assert {"figure6", "figure7", "figure8", "figure9", "worked-example"} <= set(names)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("figure42")

    def test_run_experiment_dispatch(self):
        result = run_experiment("figure9", TINY)
        assert result.name == "figure9"

    def test_run_all_subset(self):
        results = run_all(TINY, names=["worked-example", "figure8"])
        assert set(results) == {"worked-example", "figure8"}
        assert all(isinstance(value, ExperimentResult) for value in results.values())


class TestAblations:
    def test_scheduler_ablation_structure(self):
        from repro.experiments.ablations import run_scheduler_ablation

        scale = replace(TINY, core_counts=(2,), fractions=[0.05, 0.3])
        result = run_scheduler_ablation(scale, cores=2)
        assert set(result.labels()) == {
            "breadth-first",
            "depth-first",
            "critical-path-first",
        }
        for series in result.series:
            assert len(series) == 2

    def test_ilp_ablation_oracles_agree(self):
        from repro.experiments.ablations import run_ilp_ablation

        result = run_ilp_ablation(TINY, cores=2, task_count=4)
        assert result.metadata["disagreements"] == 0
        ilp = result.series_by_label("ilp").y
        bnb = result.series_by_label("bnb").y
        assert ilp == pytest.approx(bnb)
