"""Public-API surface tests: everything advertised in ``__all__`` must exist.

These tests protect downstream users: renaming or dropping a symbol that the
README or the examples rely on must fail the suite, and the top-level
re-exports must stay importable without pulling in optional machinery.
"""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.analysis",
    "repro.generator",
    "repro.simulation",
    "repro.ilp",
    "repro.experiments",
    "repro.extensions",
    "repro.io",
    "repro.visualization",
    "repro.cli",
]


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackages_import_cleanly(module_name):
    module = importlib.import_module(module_name)
    assert module is not None


@pytest.mark.parametrize("module_name", SUBPACKAGES[:-1])
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{module_name} must define __all__"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


def test_top_level_reexports_resolve():
    for name in repro.__all__:
        if name == "__version__":
            continue
        assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"


def test_readme_quickstart_symbols_exist():
    # The exact names used in README.md's quickstart snippet.
    for name in (
        "DagTask",
        "transform",
        "homogeneous_response_time",
        "heterogeneous_response_time",
        "simulate",
        "Platform",
    ):
        assert hasattr(repro, name)


def test_cli_entry_point_matches_pyproject():
    from repro.cli import main

    assert callable(main)
