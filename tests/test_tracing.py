"""Request-tracing tests (PR 10): span trees, the tail-sampled ring, and
trace-carrying structured logs.

Three layers are exercised:

* the :mod:`repro.service.tracing` substrate in isolation -- trace-id
  coercion, disabled-mode inertness, tail sampling, the ring's byte-cap
  invariant, span nesting, the Chrome export and the tree renderer;
* the traced serving stack end to end -- ``X-Repro-Trace-Id`` propagation
  through :class:`ServiceClient`, span trees for real ``/simulate``
  requests, one shared ``batcher.flush`` span per coalesced batch, and
  the burst invariant that every accepted request yields exactly one
  complete trace;
* the error path -- the HTTP envelope carries ``trace_id`` across
  429/500/503/504 and the mapped client exceptions surface it.
"""

from __future__ import annotations

import io
import json
import logging
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.examples import figure1_task
from repro.core.exceptions import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.io.json_io import task_to_dict
from repro.service import (
    EvaluationService,
    JsonLogFormatter,
    ServiceClient,
    Tracer,
    chrome_trace,
    configure_logging,
    current_trace_id,
    new_trace_id,
    start_server,
)
from repro.service.tracing import (
    NULL_SPAN,
    TRACE_HEADER,
    coerce_trace_id,
    render_trace_tree,
)
from repro.simulation.platform import Platform

from strategies import make_random_heterogeneous_task

FAST_BATCHING = dict(flush_interval=0.05, quiet_interval=0.001)

#: Monotonic-clock readings taken on different threads can disagree by a
#: hair; span-nesting assertions allow this much slack (milliseconds).
CLOCK_SLACK_MS = 1.0


@pytest.fixture()
def served():
    """A fresh traced service + HTTP server + client per test."""
    service = EvaluationService(**FAST_BATCHING)
    server, thread = start_server(service, port=0)
    client = ServiceClient(port=server.port, timeout=120)
    yield service, server, client
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    service.close()


def _wait_for_trace(tracer, trace_id, timeout=5.0):
    """Poll the ring for ``trace_id``.

    The handler finishes a trace *after* flushing the response (the root
    span covers the write), so a client that reacts immediately can beat
    the server thread's ``finally`` to the ring.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        payload = tracer.get_trace(trace_id)
        if payload is not None:
            return payload
        time.sleep(0.005)
    raise AssertionError(f"trace {trace_id} never reached the ring")


def _finished_trace(tracer, name="t", *, spans=(), error=False):
    """Start, populate and finish one trace; return its id."""
    trace = tracer.start_trace(name)
    with tracer.activate(trace):
        for span_name in spans:
            with tracer.span(span_name):
                pass
    tracer.finish_trace(trace, error=error)
    return trace.trace_id


# ----------------------------------------------------------------------
# Substrate: ids, sampling, the ring, payload shape
# ----------------------------------------------------------------------
class TestTracerUnit:
    def test_trace_id_coercion(self):
        good = new_trace_id()
        assert coerce_trace_id(good) == good
        for junk in (None, "", "not hex!", "ABC", "x" * 200):
            coerced = coerce_trace_id(junk)
            assert coerced != junk
            int(coerced, 16)  # replacement ids are well-formed hex
        # Distinct calls never collide on the replacement path.
        assert coerce_trace_id(None) != coerce_trace_id(None)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="sample"):
            Tracer(sample=1.5)
        with pytest.raises(ValueError, match="ring_bytes"):
            Tracer(ring_bytes=-1)

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        assert tracer.start_trace("x") is None
        with tracer.activate(None) as active:
            assert active is None
            with tracer.span("child") as span:
                assert span is NULL_SPAN
                span.set("k", "v")  # must swallow silently
        tracer.finish_trace(None)
        assert tracer.new_shared_span("flush") is NULL_SPAN
        assert tracer.list_traces() == []
        stats = tracer.ring_stats()
        assert stats["enabled"] is False
        assert stats["started"] == stats["kept"] == 0

    def test_tail_sampling_always_keeps_errors(self):
        tracer = Tracer(sample=0.0)
        for _ in range(10):
            _finished_trace(tracer)
        error_id = _finished_trace(tracer, error=True)
        stats = tracer.ring_stats()
        assert stats["started"] == 11
        assert stats["sampled_out"] == 10
        assert stats["kept"] == 1
        assert tracer.get_trace(error_id)["error"] is True
        only_errors = tracer.list_traces(errors=True)
        assert [t["trace_id"] for t in only_errors] == [error_id]

    def test_ring_byte_cap_evicts_oldest_first(self):
        tracer = Tracer(ring_bytes=4096)
        ids = [
            _finished_trace(tracer, spans=[f"step.{i}" for i in range(8)])
            for _ in range(64)
        ]
        stats = tracer.ring_stats()
        assert stats["ring_bytes"] <= stats["ring_capacity_bytes"]
        assert stats["evicted"] > 0
        assert stats["ring_traces"] + stats["evicted"] == 64
        # Oldest evicted, newest retained.
        assert tracer.get_trace(ids[0]) is None
        assert tracer.get_trace(ids[-1]) is not None
        newest_first = [t["trace_id"] for t in tracer.list_traces(limit=1000)]
        assert newest_first[0] == ids[-1]
        assert newest_first == list(reversed(ids[-len(newest_first):]))

    def test_single_trace_larger_than_cap_is_dropped(self):
        tracer = Tracer(ring_bytes=64)
        _finished_trace(tracer, spans=["a", "b", "c"])
        stats = tracer.ring_stats()
        assert stats["ring_traces"] == 0
        assert stats["ring_bytes"] == 0

    def test_span_payload_nesting_and_error_flag(self):
        tracer = Tracer()
        trace = tracer.start_trace("req", attributes={"path": "/x"})
        with tracer.activate(trace):
            assert current_trace_id() == trace.trace_id
            with tracer.span("outer", attributes={"k": 1}):
                with tracer.span("inner"):
                    pass
            with pytest.raises(RuntimeError):
                with tracer.span("boom"):
                    raise RuntimeError("fail inside span")
        assert current_trace_id() is None
        tracer.finish_trace(trace)
        payload = tracer.get_trace(trace.trace_id)
        by_name = {span["name"]: span for span in payload["spans"]}
        assert by_name["req"]["parent_id"] is None
        assert by_name["req"]["attributes"]["path"] == "/x"
        assert by_name["outer"]["parent_id"] == by_name["req"]["span_id"]
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["boom"].get("error") is True
        for span in payload["spans"]:
            assert "incomplete" not in span
            parent = next(
                (
                    s
                    for s in payload["spans"]
                    if s["span_id"] == span["parent_id"]
                ),
                None,
            )
            if parent is not None:
                assert span["start_ms"] >= parent["start_ms"] - CLOCK_SLACK_MS
                assert (
                    span["start_ms"] + span["duration_ms"]
                    <= parent["start_ms"]
                    + parent["duration_ms"]
                    + CLOCK_SLACK_MS
                )


# ----------------------------------------------------------------------
# Exports: the tree renderer and the Chrome trace-event JSON
# ----------------------------------------------------------------------
class TestTraceExports:
    def _payload(self):
        tracer = Tracer()
        trace_id = _finished_trace(
            tracer, "http.request", spans=["facade.submit", "cache.lookup"]
        )
        return tracer.get_trace(trace_id)

    def test_render_trace_tree_layout(self):
        payload = self._payload()
        text = render_trace_tree(payload)
        lines = text.splitlines()
        assert payload["trace_id"] in lines[0]
        assert "http.request" in lines[0]
        assert "ms" in lines[0]
        for name in ("facade.submit", "cache.lookup"):
            assert any(name in line and "%" in line for line in lines[1:])

    def test_render_marks_errors(self):
        tracer = Tracer()
        trace_id = _finished_trace(tracer, error=True)
        assert "[ERROR]" in render_trace_tree(tracer.get_trace(trace_id))

    def test_chrome_trace_events(self):
        payload = self._payload()
        document = chrome_trace(payload)
        events = document["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {
            "http.request",
            "facade.submit",
            "cache.lookup",
        }
        base_us = payload["start_unix"] * 1e6
        for event in slices:
            assert event["ts"] >= base_us - 1  # absolute microseconds
            assert event["dur"] >= 0
            assert event["args"]["span_id"]
        assert any(e["ph"] == "M" for e in events)  # track metadata
        assert document["otherData"]["trace_id"] == payload["trace_id"]


# ----------------------------------------------------------------------
# Structured logs carry the ambient trace id
# ----------------------------------------------------------------------
class TestJsonLogging:
    def _format(self, record_args, extra=None):
        formatter = JsonLogFormatter()
        record = logging.LogRecord(
            "repro.service.test", logging.INFO, __file__, 1,
            *record_args, None,
        )
        for key, value in (extra or {}).items():
            setattr(record, key, value)
        return json.loads(formatter.format(record))

    def test_plain_record_shape(self):
        document = self._format(("hello %s", ("world",)))
        assert document["message"] == "hello world"
        assert document["level"] == "info"
        assert document["logger"] == "repro.service.test"
        assert isinstance(document["ts"], float)
        assert "trace_id" not in document  # no ambient trace, no key

    def test_trace_id_from_record_and_data_merge(self):
        document = self._format(
            ("%s %s", ("GET", "/health")),
            extra={"trace_id": "cafe01", "data": {"status": 200}},
        )
        assert document["trace_id"] == "cafe01"
        assert document["status"] == 200

    def test_trace_id_from_ambient_trace(self):
        tracer = Tracer()
        trace = tracer.start_trace("req")
        with tracer.activate(trace):
            document = self._format(("in-request", ()))
        tracer.finish_trace(trace)
        assert document["trace_id"] == trace.trace_id

    def test_configure_logging_idempotent_and_validating(self):
        stream = io.StringIO()
        logger = configure_logging("info", stream=stream)
        again = configure_logging("info", stream=stream)
        assert logger is again
        assert len(logger.handlers) == 1
        logger.info("probe %d", 7)
        assert json.loads(stream.getvalue())["message"] == "probe 7"
        with pytest.raises(ValueError, match="log level"):
            configure_logging("loud")


# ----------------------------------------------------------------------
# End to end over HTTP: propagation, span trees, listings
# ----------------------------------------------------------------------
class TestHTTPTracing:
    def test_simulate_returns_trace_with_nested_spans(self, served):
        service, _, client = served
        task = figure1_task(period=20, deadline=15)
        makespan = client.simulate(task, cores=2)
        assert makespan > 0
        trace_id = client.last_trace_id
        assert trace_id

        _wait_for_trace(service.tracer, trace_id)
        payload = client.trace(trace_id)
        assert payload["trace_id"] == trace_id
        assert payload["error"] is False
        by_name = {span["name"]: span for span in payload["spans"]}
        for name in (
            "http.request",
            "facade.submit",
            "cache.lookup",
            "batcher.queue",
            "batcher.flush",
        ):
            assert name in by_name, f"missing span {name}"
        root = by_name["http.request"]
        assert root["parent_id"] is None
        assert root["attributes"]["path"] == "/simulate"
        assert root["attributes"]["status"] == 200
        assert by_name["batcher.flush"].get("shared") is True
        # An engine leaf ran under the shared flush span.
        engines = [
            span
            for span in payload["spans"]
            if span["name"].startswith(("engine.", "oracle.", "workload."))
        ]
        assert engines
        assert all(
            span["parent_id"] == by_name["batcher.flush"]["span_id"]
            for span in engines
        )
        # Request-local spans nest inside the root and inside each other.
        submit = by_name["facade.submit"]
        for child in (by_name["cache.lookup"], by_name["batcher.queue"]):
            assert child["parent_id"] == submit["span_id"]
            assert child["start_ms"] >= submit["start_ms"] - CLOCK_SLACK_MS
            assert (
                child["start_ms"] + child["duration_ms"]
                <= submit["start_ms"] + submit["duration_ms"] + CLOCK_SLACK_MS
            )
        assert (
            submit["duration_ms"] <= root["duration_ms"] + CLOCK_SLACK_MS
        )

    def test_trace_header_round_trips_and_listing_sees_it(self, served):
        service, server, client = served
        task = figure1_task(period=20, deadline=15)
        chosen = new_trace_id()
        document = {"task": task_to_dict(task), "cores": 2}
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/simulate",
            data=json.dumps(document).encode(),
            headers={
                "Content-Type": "application/json",
                TRACE_HEADER: chosen,
            },
        )
        with urllib.request.urlopen(request) as response:
            assert response.headers[TRACE_HEADER] == chosen
        _wait_for_trace(service.tracer, chosen)
        listing = client.traces(limit=10)
        assert chosen in [t["trace_id"] for t in listing["traces"]]
        assert listing["ring"]["kept"] >= 1

    def test_chrome_format_and_not_found(self, served):
        service, _, client = served
        task = figure1_task(period=20, deadline=15)
        client.simulate(task, cores=2)
        _wait_for_trace(service.tracer, client.last_trace_id)
        chrome = client.trace(client.last_trace_id, format="chrome")
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])
        with pytest.raises(ValueError, match="format"):
            client.trace(client.last_trace_id, format="svg")
        with pytest.raises(ServiceError, match="trace"):
            client.trace("feedfacefeedface")

    def test_mixed_burst_yields_one_complete_trace_per_request(self, served):
        service, _, client = served
        tasks = [make_random_heterogeneous_task(seed, 0.2) for seed in range(5)]
        with ThreadPoolExecutor(max_workers=12) as pool:
            futures = (
                [
                    pool.submit(client.simulate, task, cores)
                    for task in tasks
                    for cores in (2, 4)
                ]
                + [pool.submit(client.analyse, task, 2) for task in tasks[:3]]
                # The exact oracle needs integer WCETs; figure1 qualifies.
                + [
                    pool.submit(
                        client.makespan, figure1_task(period=20, deadline=15),
                        cores,
                    )
                    for cores in (2, 4)
                ]
            )
            for future in futures:
                future.result(timeout=120)

        # The root span covers the response write, so the handler finishes
        # the trace *after* flushing the response -- give each server
        # thread a beat to run its ``finally`` before asserting.
        deadline = time.monotonic() + 5.0
        while (
            service.tracer.ring_stats()["kept"] < len(futures)
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        stats = service.tracer.ring_stats()
        assert stats["started"] == len(futures)
        assert stats["kept"] == len(futures)  # sample=1.0: nothing dropped
        assert stats["sampled_out"] == 0
        assert stats["ring_bytes"] <= stats["ring_capacity_bytes"]

        listing = client.traces(limit=len(futures) + 10)
        assert len(listing["traces"]) == len(futures)
        for summary in listing["traces"]:
            payload = client.trace(summary["trace_id"])
            roots = [s for s in payload["spans"] if s["parent_id"] is None]
            assert len(roots) == 1
            assert roots[0]["name"] == "http.request"
            assert not payload["error"]
            for span in payload["spans"]:
                # Request-local spans must all be closed.  Shared spans
                # (the batch flush subtree) are snapshotted at this
                # member's finish and may legitimately still be open --
                # the flush keeps distributing to the other members.
                if not span.get("shared"):
                    assert "incomplete" not in span, span

    def test_stats_document_reports_tracing(self, served):
        _, _, client = served
        tracing = client.stats()["tracing"]
        assert tracing["enabled"] is True
        assert tracing["sample"] == 1.0


# ----------------------------------------------------------------------
# Coalesced batches share exactly one flush span
# ----------------------------------------------------------------------
class TestCoalescedFlushSpan:
    def test_members_of_one_batch_link_the_same_flush_span(self):
        # A long flush interval plus a short quiet window: four distinct
        # requests released together land in a single coalesced batch.
        service = EvaluationService(flush_interval=1.0, quiet_interval=0.05)
        tracer = service.tracer
        tasks = [
            make_random_heterogeneous_task(seed, 0.2) for seed in range(4)
        ]
        trace_ids = [None] * len(tasks)
        barrier = threading.Barrier(len(tasks))

        def submit(index):
            trace = tracer.start_trace("bench.request")
            trace_ids[index] = trace.trace_id
            barrier.wait()
            try:
                with tracer.activate(trace):
                    service.submit_simulation(
                        tasks[index], Platform(host_cores=2, accelerators=1)
                    )
            finally:
                tracer.finish_trace(trace)

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(len(tasks))
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
                assert not thread.is_alive()
        finally:
            service.close()

        flush_ids = set()
        for trace_id in trace_ids:
            payload = tracer.get_trace(trace_id)
            flush_spans = [
                s for s in payload["spans"] if s["name"] == "batcher.flush"
            ]
            assert len(flush_spans) == 1
            flush = flush_spans[0]
            assert flush.get("shared") is True
            assert flush["attributes"]["batch_size"] == len(tasks)
            # The shared span hangs under this member's own queue span.
            queue = next(
                s for s in payload["spans"] if s["name"] == "batcher.queue"
            )
            assert flush["parent_id"] == queue["span_id"]
            links = [l for l in payload["links"] if "span_id" in l]
            assert [l["kind"] for l in links] == ["flush"]
            flush_ids.add(flush["span_id"])
        assert len(flush_ids) == 1  # one batch, one shared span for all four


# ----------------------------------------------------------------------
# Error envelopes: trace_id across 429/500/503/504
# ----------------------------------------------------------------------
def _post_simulate(port, task):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/simulate",
        data=json.dumps({"task": task_to_dict(task), "cores": 2}).encode(),
        headers={"Content-Type": "application/json"},
    )
    return urllib.request.urlopen(request)


class TestErrorEnvelopeTraceIds:
    @pytest.mark.parametrize(
        "boom, status, code, retryable",
        [
            (
                lambda *a, **k: (_ for _ in ()).throw(
                    ServiceOverloadedError("queue full", retry_after=2.5)
                ),
                429,
                "overloaded",
                True,
            ),
            (
                lambda *a, **k: (_ for _ in ()).throw(
                    RuntimeError("secret internal detail")
                ),
                500,
                "internal",
                False,
            ),
            (
                lambda *a, **k: (_ for _ in ()).throw(
                    ServiceClosedError("service is closed")
                ),
                503,
                "closed",
                True,
            ),
            (
                lambda *a, **k: (_ for _ in ()).throw(
                    ServiceTimeoutError("deadline exceeded")
                ),
                504,
                "timeout",
                True,
            ),
        ],
        ids=["429-overloaded", "500-internal", "503-closed", "504-timeout"],
    )
    def test_envelope_shape_carries_trace_id(
        self, served, boom, status, code, retryable
    ):
        service, server, _ = served
        service.submit_simulation = boom  # type: ignore[method-assign]
        task = figure1_task(period=20, deadline=15)
        with pytest.raises(urllib.error.HTTPError) as info:
            _post_simulate(server.port, task)
        assert info.value.code == status
        header_id = info.value.headers[TRACE_HEADER]
        assert header_id
        document = json.loads(info.value.read().decode("utf-8"))
        envelope = document["error"]
        assert envelope["code"] == code
        assert envelope["retryable"] is retryable
        assert envelope["trace_id"] == header_id
        assert "secret" not in json.dumps(document)

        # Error traces are always kept (tail sampling) and marked.
        payload = _wait_for_trace(service.tracer, header_id)
        assert payload["error"] is True
        root = next(s for s in payload["spans"] if s["parent_id"] is None)
        assert root["attributes"]["status"] == status

    def test_client_exceptions_surface_the_trace_id(self, served):
        service, server, _ = served

        def shed(*args, **kwargs):
            raise ServiceOverloadedError("queue full", retry_after=0.1)

        service.submit_simulation = shed  # type: ignore[method-assign]
        client = ServiceClient(port=server.port, timeout=30, retries=0)
        task = figure1_task(period=20, deadline=15)
        with pytest.raises(ServiceOverloadedError) as info:
            client.simulate(task, cores=2)
        assert info.value.trace_id
        assert client.last_trace_id == info.value.trace_id
        payload = _wait_for_trace(service.tracer, info.value.trace_id)
        assert payload["error"] is True

    def test_bad_request_envelope_also_traced(self, served):
        _, server, _ = served
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/simulate",
            data=b'{"cores": 2}',
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400
        document = json.loads(info.value.read().decode("utf-8"))
        assert document["error"]["trace_id"] == info.value.headers[TRACE_HEADER]


# ----------------------------------------------------------------------
# Tracing disabled: the serving stack still works, header-free
# ----------------------------------------------------------------------
class TestTracingDisabled:
    def test_untraced_service_serves_without_header_or_ring(self):
        service = EvaluationService(tracing=False, **FAST_BATCHING)
        server, thread = start_server(service, port=0)
        client = ServiceClient(port=server.port, timeout=120)
        try:
            task = figure1_task(period=20, deadline=15)
            assert client.simulate(task, cores=2) > 0
            assert client.last_trace_id is None
            listing = client.traces()
            assert listing["traces"] == []
            assert listing["ring"]["enabled"] is False
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            service.close()
