"""Tests for the future-work extensions (:mod:`repro.extensions`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.homogeneous import response_time as homogeneous_response_time
from repro.core.exceptions import AnalysisError, ValidationError
from repro.core.task import DagTask
from repro.extensions.multi_device import (
    MultiDeviceTask,
    balance_devices,
    simulate_multi_device,
)
from repro.extensions.multi_device import response_time as multi_device_response_time
from repro.extensions.multi_offload import (
    MultiOffloadTask,
    simulate_multi_offload,
)
from repro.extensions.multi_offload import response_time as multi_offload_response_time
from repro.simulation.schedulers import BreadthFirstPolicy, RandomPolicy

from strategies import make_random_heterogeneous_task


def two_offload_task() -> MultiOffloadTask:
    """A task whose simulated makespan *exceeds* Equation 1 (see below).

    Two independent offloaded nodes serialise on the single accelerator
    while both host cores idle: with ``m = 2`` Equation 1 gives
    ``12 + 10/2 = 17`` but the only possible execution takes 22 time units.
    """
    task = DagTask.from_wcets(
        {"a": 1, "o1": 10, "o2": 10, "s": 1},
        [("a", "o1"), ("a", "o2"), ("o1", "s"), ("o2", "s")],
    )
    return MultiOffloadTask.from_task(task, extra_offloaded={"o1", "o2"})


class TestMultiOffloadModel:
    def test_from_task_collects_the_existing_offload(self):
        from repro.core.examples import figure1_task

        promoted = MultiOffloadTask.from_task(figure1_task(), extra_offloaded={"v2"})
        assert promoted.offloaded_nodes == {"v_off", "v2"}
        assert promoted.device_volume() == 8
        assert promoted.host_volume() == 10

    def test_unknown_offloaded_node_rejected(self):
        task = DagTask.from_wcets({"a": 1}, [])
        with pytest.raises(ValidationError):
            MultiOffloadTask(graph=task.graph, offloaded_nodes={"ghost"})

    def test_volume_accounting(self):
        task = two_offload_task()
        assert task.volume == 22
        assert task.device_volume() == 20
        assert task.host_volume() == 2
        assert task.critical_path_length == 12


class TestMultiOffloadAnalysis:
    def test_equation_one_is_unsafe_with_two_offloaded_nodes(self):
        """The motivating counterexample for the generalised bound."""
        multi = two_offload_task()
        plain_task = DagTask(graph=multi.graph, offloaded_node=None)
        equation_one = homogeneous_response_time(plain_task, 2).bound
        trace = simulate_multi_offload(multi, cores=2)
        trace.validate()
        assert equation_one == 17
        assert trace.makespan() == 22
        assert trace.makespan() > equation_one

    def test_generalised_bound_covers_the_counterexample(self):
        multi = two_offload_task()
        bound = multi_offload_response_time(multi, 2)
        assert bound.bound >= 22
        assert bound.method == "multi-offload"
        assert bound.terms["vol_dev"] == 20

    def test_single_offload_degenerates_sensibly(self):
        from repro.core.examples import figure1_task

        task = figure1_task()
        multi = MultiOffloadTask.from_task(task)
        bound = multi_offload_response_time(multi, 2)
        # max host path = v1+v3+v5 = 8; 8*(1/2) + 14/2 + 4 = 15.
        assert bound.bound == 15
        assert bound.bound >= homogeneous_response_time(task, 2).bound - 4 / 2

    def test_invalid_core_count_rejected(self):
        with pytest.raises(AnalysisError):
            multi_offload_response_time(two_offload_task(), 0)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        cores=st.sampled_from([1, 2, 4]),
        extra=st.integers(min_value=0, max_value=3),
    )
    def test_bound_is_safe_against_simulation(self, seed, cores, extra):
        base = make_random_heterogeneous_task(seed, 0.2, n_max=25)
        # Offload the designated node plus up to `extra` further nodes.
        additional = [
            node
            for node in list(base.graph.nodes())[: extra + 1]
            if node != base.offloaded_node
        ][:extra]
        multi = MultiOffloadTask.from_task(base, extra_offloaded=additional)
        bound = multi_offload_response_time(multi, cores).bound
        for policy in (BreadthFirstPolicy(), RandomPolicy(seed)):
            trace = simulate_multi_offload(multi, cores, policy)
            trace.validate()
            assert trace.makespan() <= bound + 1e-6


class TestMultiDevice:
    def test_balance_devices_is_lpt(self):
        task = DagTask.from_wcets(
            {"a": 1, "x": 9, "y": 5, "z": 4, "s": 1},
            [("a", "x"), ("a", "y"), ("a", "z"), ("x", "s"), ("y", "s"), ("z", "s")],
        )
        multi = balance_devices(task, offloaded_nodes=["x", "y", "z"], device_count=2)
        assert multi.device_count == 2
        # LPT: x (9) alone on one device, y + z (9) on the other.
        assert multi.device_assignment["x"] != multi.device_assignment["y"]
        assert multi.device_assignment["y"] == multi.device_assignment["z"]
        assert multi.device_volume(0) + multi.device_volume(1) == 18

    def test_invalid_assignment_rejected(self):
        task = DagTask.from_wcets({"a": 1, "b": 2}, [("a", "b")])
        with pytest.raises(ValidationError):
            MultiDeviceTask(graph=task.graph, device_assignment={"b": 5}, device_count=2)
        with pytest.raises(ValidationError):
            MultiDeviceTask(graph=task.graph, device_assignment={"ghost": 0})
        with pytest.raises(ValidationError):
            MultiDeviceTask(graph=task.graph, device_count=0)
        with pytest.raises(ValidationError):
            balance_devices(task, offloaded_nodes=["ghost"], device_count=1)

    def test_simulation_uses_every_device(self):
        task = DagTask.from_wcets(
            {"a": 1, "x": 6, "y": 6, "s": 1},
            [("a", "x"), ("a", "y"), ("x", "s"), ("y", "s")],
        )
        multi = balance_devices(task, offloaded_nodes=["x", "y"], device_count=2)
        trace = simulate_multi_device(multi, cores=2)
        trace.validate()
        devices_used = {
            record.resource
            for record in trace.executions
            if record.resource_kind == "accelerator"
        }
        assert devices_used == {"acc0", "acc1"}
        # Two devices run x and y in parallel: 1 + 6 + 1.
        assert trace.makespan() == 8

    def test_two_devices_beat_one_in_simulation(self):
        task = DagTask.from_wcets(
            {"a": 1, "x": 6, "y": 6, "s": 1},
            [("a", "x"), ("a", "y"), ("x", "s"), ("y", "s")],
        )
        one = MultiOffloadTask.from_task(task, extra_offloaded={"x", "y"})
        two = balance_devices(task, offloaded_nodes=["x", "y"], device_count=2)
        assert (
            simulate_multi_device(two, 2).makespan()
            < simulate_multi_offload(one, 2).makespan()
        )

    def test_bound_is_safe_for_multi_device_simulation(self):
        task = DagTask.from_wcets(
            {"a": 2, "x": 6, "y": 6, "h": 5, "s": 1},
            [("a", "x"), ("a", "y"), ("a", "h"), ("x", "s"), ("y", "s"), ("h", "s")],
        )
        multi = balance_devices(task, offloaded_nodes=["x", "y"], device_count=2)
        bound = multi_device_response_time(multi, 2)
        trace = simulate_multi_device(multi, 2)
        trace.validate()
        assert trace.makespan() <= bound.bound + 1e-9
        assert bound.terms["devices"] == 2.0

    def test_invalid_core_count_rejected(self):
        task = DagTask.from_wcets({"a": 1}, [])
        multi = MultiDeviceTask(graph=task.graph)
        with pytest.raises(AnalysisError):
            multi_device_response_time(multi, 0)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        cores=st.sampled_from([1, 2, 4]),
        devices=st.sampled_from([1, 2, 3]),
    )
    def test_bound_is_safe_against_simulation(self, seed, cores, devices):
        base = make_random_heterogeneous_task(seed, 0.25, n_max=25)
        offloaded = [base.offloaded_node] + [
            node
            for node in list(base.graph.nodes())[:3]
            if node != base.offloaded_node
        ][: devices - 1]
        multi = balance_devices(base, offloaded_nodes=offloaded, device_count=devices)
        bound = multi_device_response_time(multi, cores).bound
        for policy in (BreadthFirstPolicy(), RandomPolicy(seed)):
            trace = simulate_multi_device(multi, cores, policy)
            trace.validate()
            assert trace.makespan() <= bound + 1e-6
