"""Tests of the serving-layer metrics registry (:mod:`repro.service.metrics`).

Covers the PR 7 observability substrate:

* counter / gauge / histogram unit semantics (monotonicity, labels,
  callback gauges, ``le`` bucket placement);
* a hypothesis property bounding the histogram's percentile *estimate* by
  the width of the bucket that contains the exact nearest-rank percentile;
* registry create-or-get sharing and kind/label-mismatch rejection;
* JSON <-> Prometheus text parity (the text exposition parsed back equals
  the JSON rendering series for series);
* consistency under a threaded update burst (no lost increments, bucket
  counts that sum to the observation count).
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

# ----------------------------------------------------------------------
# Counter
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_value_total(self):
        counter = Counter("c_total", "help", ("kind",))
        counter.inc(kind="simulate")
        counter.inc(3, kind="simulate")
        counter.inc(kind="analyse")
        assert counter.value(kind="simulate") == 4
        assert counter.value(kind="analyse") == 1
        assert counter.value(kind="makespan") == 0
        assert counter.total() == 5

    def test_unlabelled(self):
        counter = Counter("c_total", "help")
        assert counter.value() == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_rejects_negative(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_rejects_wrong_labels(self):
        counter = Counter("c_total", "help", ("kind",))
        with pytest.raises(ValueError, match="expected labels"):
            counter.inc(other="x")
        with pytest.raises(ValueError, match="expected labels"):
            counter.inc()

    def test_collect_sorted_by_key(self):
        counter = Counter("c_total", "help", ("kind",))
        counter.inc(kind="z")
        counter.inc(kind="a")
        assert counter.collect() == [(("a",), 1), (("z",), 1)]


# ----------------------------------------------------------------------
# Gauge
# ----------------------------------------------------------------------
class TestGauge:
    def test_set_add(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value() == 7

    def test_callback_evaluated_at_read_time(self):
        box = {"value": 1}
        gauge = Gauge("g", "help", callback=lambda: box["value"])
        assert gauge.value() == 1
        box["value"] = 42
        assert gauge.value() == 42
        assert gauge.collect() == [((), 42)]

    def test_callback_gauge_rejects_set_and_labels(self):
        gauge = Gauge("g", "help", callback=lambda: 0)
        with pytest.raises(ValueError, match="callback-driven"):
            gauge.set(1)
        with pytest.raises(ValueError, match="callback-driven"):
            gauge.add(1)
        with pytest.raises(ValueError, match="unlabelled"):
            Gauge("g", "help", ("kind",), callback=lambda: 0)


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucket_validation(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", "help", buckets=())
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", "help", buckets=(1.0, 1.0, 2.0))

    def test_le_bucket_placement(self):
        """A value equal to a bound lands in that bound's bucket."""
        histogram = Histogram("h", "help", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 9.0):
            histogram.observe(value)
        [(key, series)] = histogram.collect()
        assert key == ()
        # counts: <=1.0 -> {0.5, 1.0}; <=2.0 -> {1.5, 2.0}; <=4.0 -> {4.0};
        # +Inf -> {9.0}
        assert series.counts == [2, 2, 1, 1]
        assert series.count == 6
        assert series.sum == pytest.approx(18.0)
        assert series.min == 0.5
        assert series.max == 9.0

    def test_empty_series(self):
        histogram = Histogram("h", "help")
        assert math.isnan(histogram.percentile(0.5))
        assert histogram.count() == 0
        assert histogram.total_count() == 0

    def test_quantile_range_checked(self):
        histogram = Histogram("h", "help")
        with pytest.raises(ValueError, match="quantile"):
            histogram.percentile(1.5)

    def test_constant_series_estimates_exactly(self):
        """min == max collapses the containing bucket: the estimate is exact."""
        histogram = Histogram("h", "help", buckets=(1.0, 10.0, 100.0))
        for _ in range(50):
            histogram.observe(7.25)
        for quantile in (0.01, 0.5, 0.95, 0.99, 1.0):
            assert histogram.percentile(quantile) == 7.25

    def test_overflow_bucket_clamped_to_observed_max(self):
        histogram = Histogram("h", "help", buckets=(1.0,))
        histogram.observe(5.0)
        histogram.observe(6.0)
        assert histogram.percentile(0.99) <= 6.0

    def test_labelled_series_are_independent(self):
        histogram = Histogram("h", "help", buckets=(1.0, 2.0), label_names=("e",))
        histogram.observe(0.5, e="a")
        histogram.observe(1.5, e="b")
        assert histogram.count(e="a") == 1
        assert histogram.count(e="b") == 1
        assert histogram.total_count() == 2


def _exact_nearest_rank(sorted_values: list[float], quantile: float) -> float:
    rank = max(1, math.ceil(quantile * len(sorted_values)))
    return sorted_values[rank - 1]


@settings(max_examples=200, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    quantile=st.sampled_from([0.5, 0.9, 0.95, 0.99]),
)
def test_percentile_estimate_bounded_by_containing_bucket(samples, quantile):
    """The estimate lies inside the bucket holding the exact percentile.

    With nearest-rank exact percentiles, the bucket whose cumulative count
    first reaches the rank is exactly the bucket containing the exact
    value -- so the estimation error is bounded by that bucket's width
    (clamped to the observed min/max at the tails).
    """
    histogram = Histogram("h", "help", buckets=LATENCY_BUCKETS)
    for value in samples:
        histogram.observe(value)
    estimate = histogram.percentile(quantile)
    exact = _exact_nearest_rank(sorted(samples), quantile)
    index = bisect_left(LATENCY_BUCKETS, exact)
    lower = LATENCY_BUCKETS[index - 1] if index > 0 else 0.0
    upper = (
        LATENCY_BUCKETS[index]
        if index < len(LATENCY_BUCKETS)
        else max(samples)
    )
    lower = max(lower, min(samples)) if min(samples) <= upper else lower
    upper = min(upper, max(samples)) if max(samples) >= lower else upper
    assert lower - 1e-9 <= estimate <= upper + 1e-9
    assert abs(estimate - exact) <= (upper - lower) + 1e-9


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_create_or_get_shares_the_object(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", "help", labels=("kind",))
        second = registry.counter("requests_total", "other help", labels=("kind",))
        assert first is second
        first.inc(kind="simulate")
        assert second.value(kind="simulate") == 1

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", "help")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m", "help")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", "help", labels=("kind",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("m", "help", labels=("endpoint",))

    def test_get(self):
        registry = MetricsRegistry()
        counter = registry.counter("m_total", "help")
        assert registry.get("m_total") is counter
        assert registry.get("missing") is None

    def test_render_json_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "counter help", labels=("kind",)).inc(
            kind="simulate"
        )
        registry.gauge("g", "gauge help").set(3.5)
        histogram = registry.histogram("h_seconds", "hist help", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        document = registry.render_json()
        assert document["counters"]["c_total"]["series"] == [
            {"labels": {"kind": "simulate"}, "value": 1}
        ]
        assert document["gauges"]["g"]["series"] == [{"labels": {}, "value": 3.5}]
        [series] = document["histograms"]["h_seconds"]["series"]
        assert series["counts"] == [1, 1, 0]
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(2.0)
        assert series["min"] == 0.5
        assert series["max"] == 1.5
        for quantile_key in ("p50", "p95", "p99"):
            assert 0.0 <= series[quantile_key] <= 1.5


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_SAMPLE_LINE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})? (\S+)$")


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse the text exposition back into ``{(name, labels): value}``."""
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        name, label_block, value = match.groups()
        labels: list[tuple[str, str]] = []
        if label_block:
            for part in re.findall(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"', label_block):
                unescaped = (
                    part[1]
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels.append((part[0], unescaped))
        key = (name, tuple(sorted(labels)))
        assert key not in samples, f"duplicate sample {key}"
        samples[key] = float(value)
    return samples


class TestPrometheusParity:
    def _populated_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        requests = registry.counter("req_total", "requests", labels=("kind",))
        requests.inc(5, kind="simulate")
        requests.inc(2, kind="analyse")
        registry.gauge("pending", "queue depth").set(7)
        latency = registry.histogram(
            "latency_seconds", "latency", buckets=(0.1, 1.0), labels=("endpoint",)
        )
        for value in (0.05, 0.5, 0.5, 2.0):
            latency.observe(value, endpoint="/simulate")
        return registry

    def test_help_and_type_lines(self):
        text = self._populated_registry().render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert "# TYPE pending gauge" in text
        assert "# TYPE latency_seconds histogram" in text

    def test_text_matches_json(self):
        registry = self._populated_registry()
        samples = parse_prometheus(registry.render_prometheus())
        document = registry.render_json()

        for name, payload in document["counters"].items():
            for series in payload["series"]:
                key = (name, tuple(sorted(series["labels"].items())))
                assert samples[key] == series["value"]
        for name, payload in document["gauges"].items():
            for series in payload["series"]:
                key = (name, tuple(sorted(series["labels"].items())))
                assert samples[key] == series["value"]
        for name, payload in document["histograms"].items():
            bounds = payload["buckets"]
            for series in payload["series"]:
                labels = tuple(sorted(series["labels"].items()))
                assert samples[(f"{name}_count", labels)] == series["count"]
                assert samples[(f"{name}_sum", labels)] == pytest.approx(
                    series["sum"]
                )
                cumulative = 0
                for bound, count in zip(bounds, series["counts"]):
                    cumulative += count
                    bound_text = (
                        str(int(bound)) if float(bound).is_integer() else repr(bound)
                    )
                    bucket_key = (
                        f"{name}_bucket",
                        tuple(sorted(labels + (("le", bound_text),))),
                    )
                    assert samples[bucket_key] == cumulative
                infinity_key = (
                    f"{name}_bucket",
                    tuple(sorted(labels + (("le", "+Inf"),))),
                )
                assert samples[infinity_key] == series["count"]

    def test_cumulative_buckets_non_decreasing(self):
        samples = parse_prometheus(
            self._populated_registry().render_prometheus()
        )
        buckets = sorted(
            (dict(labels)["le"], value)
            for (name, labels), value in samples.items()
            if name == "latency_seconds_bucket"
        )
        values = [value for _, value in buckets if _ != "+Inf"]
        assert values == sorted(values)

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        counter = registry.counter("odd_total", "odd", labels=("path",))
        nasty = 'a"b\\c\nd'
        counter.inc(3, path=nasty)
        samples = parse_prometheus(registry.render_prometheus())
        assert samples[("odd_total", (("path", nasty),))] == 3

    def test_integers_render_without_decimal_point(self):
        registry = MetricsRegistry()
        registry.counter("n_total", "n").inc(5)
        text = registry.render_prometheus()
        assert "n_total 5\n" in text
        assert "n_total 5.0" not in text


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
def test_no_lost_updates_under_threaded_burst():
    registry = MetricsRegistry()
    counter = registry.counter("burst_total", "burst", labels=("worker",))
    shared = registry.counter("shared_total", "shared")
    histogram = registry.histogram("burst_seconds", "burst", buckets=(0.5, 1.0))
    threads, per_thread = 8, 500

    def work(worker: int) -> None:
        for step in range(per_thread):
            counter.inc(worker=worker % 2)
            shared.inc()
            histogram.observe((step % 3) * 0.4)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        for future in [pool.submit(work, index) for index in range(threads)]:
            future.result()

    assert shared.value() == threads * per_thread
    assert counter.total() == threads * per_thread
    assert histogram.total_count() == threads * per_thread
    [(_, series)] = histogram.collect()
    assert sum(series.counts) == series.count == threads * per_thread
    # 0.0 -> first bucket, 0.4 -> first bucket, 0.8 -> second bucket
    expected_second = threads * sum(1 for s in range(per_thread) if s % 3 == 2)
    assert series.counts[1] == expected_second
