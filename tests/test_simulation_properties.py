"""Property-based tests of the simulator on randomly generated tasks."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.homogeneous import makespan_lower_bound
from repro.core.transformation import transform
from repro.simulation.engine import simulate
from repro.simulation.platform import ACCELERATOR, HOST, INSTANT, Platform
from repro.simulation.schedulers import (
    BreadthFirstPolicy,
    CriticalPathFirstPolicy,
    DepthFirstPolicy,
    RandomPolicy,
)

from strategies import make_random_heterogeneous_task, make_random_host_task

_SEEDS = st.integers(min_value=0, max_value=4_000)
_FRACTIONS = st.floats(min_value=0.01, max_value=0.6, allow_nan=False)
_CORES = st.sampled_from([1, 2, 3, 4, 8])
_POLICY_FACTORIES = (
    BreadthFirstPolicy,
    DepthFirstPolicy,
    CriticalPathFirstPolicy,
    lambda: RandomPolicy(0),
)


@settings(max_examples=40, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
def test_every_trace_is_a_legal_schedule(seed, fraction, cores):
    task = make_random_heterogeneous_task(seed, fraction, n_max=30)
    platform = Platform(host_cores=cores, accelerators=1)
    for factory in _POLICY_FACTORIES:
        trace = simulate(task, platform, factory())
        trace.validate()
        assert len(trace) == task.node_count


@settings(max_examples=40, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
def test_makespan_respects_structural_lower_bounds(seed, fraction, cores):
    task = make_random_heterogeneous_task(seed, fraction, n_max=30)
    platform = Platform(host_cores=cores, accelerators=1)
    lower = makespan_lower_bound(task, cores)
    for factory in _POLICY_FACTORIES:
        makespan = simulate(task, platform, factory()).makespan()
        assert makespan >= lower - 1e-9
        assert makespan <= task.volume + 1e-9


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
def test_offloaded_node_runs_on_the_accelerator_and_host_nodes_do_not(
    seed, fraction, cores
):
    task = make_random_heterogeneous_task(seed, fraction, n_max=25)
    trace = simulate(task, Platform(cores, 1))
    for record in trace.executions:
        if record.node == task.offloaded_node and record.duration > 0:
            assert record.resource_kind == ACCELERATOR
        elif record.duration > 0:
            assert record.resource_kind == HOST
        else:
            assert record.resource_kind == INSTANT


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
def test_work_conservation_no_idle_core_while_work_is_pending(seed, fraction, cores):
    """At any node start, either it starts at its ready time or the start is
    justified by resource contention earlier (queueing delay only accrues
    when the resource class was saturated at the ready instant)."""
    task = make_random_heterogeneous_task(seed, fraction, n_max=25)
    platform = Platform(cores, 1)
    trace = simulate(task, platform)
    host_records = [r for r in trace.executions if r.resource_kind == HOST]
    for record in host_records:
        if record.queueing_delay <= 1e-9:
            continue
        # The node waited: at its ready instant all m cores must be busy.
        busy = sum(
            1
            for other in host_records
            if other is not record
            and other.start <= record.ready < other.finish
        )
        assert busy >= platform.host_cores


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS)
def test_transformed_task_simulation_respects_the_sync_barrier(seed, fraction):
    task = make_random_heterogeneous_task(seed, fraction, n_max=25)
    transformed = transform(task)
    trace = simulate(transformed.task, Platform(2, 1))
    sync_finish = trace.execution_of(transformed.sync_node).finish
    assert trace.execution_of(transformed.offloaded_node).start >= sync_finish - 1e-9
    for node in transformed.gpar_nodes:
        assert trace.execution_of(node).start >= sync_finish - 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=_SEEDS, cores=_CORES)
def test_homogeneous_and_offload_disabled_traces_match(seed, cores):
    """A heterogeneous task with offload disabled behaves exactly like the
    same task stripped of its offload designation."""
    task = make_random_heterogeneous_task(seed, 0.2, n_max=25)
    platform = Platform(cores, 1)
    disabled = simulate(task, platform, offload_enabled=False)
    stripped = simulate(task.as_homogeneous(), platform)
    assert disabled.makespan() == stripped.makespan()


@settings(max_examples=25, deadline=None)
@given(seed=_SEEDS, cores=_CORES)
def test_offloading_is_bounded_relative_to_the_homogeneous_execution(seed, cores):
    """Scheduling anomalies aside, offloading cannot blow the makespan up.

    Offloading is not *guaranteed* to help under a fixed work-conserving
    policy (removing v_off from the host changes the ready order, which can
    trigger Graham anomalies), but the heterogeneous makespan is bounded by
    Eq. 1 while the homogeneous one is at least ``max(len, vol/m)``, so the
    ratio can never exceed 2.
    """
    task = make_random_heterogeneous_task(seed, 0.3, n_max=25)
    platform = Platform(cores, 1)
    hetero = simulate(task, platform).makespan()
    homo = simulate(task, platform, offload_enabled=False).makespan()
    assert hetero <= 2 * homo + 1e-9
