"""Unit tests for the DAG substrate (:mod:`repro.core.graph`)."""

from __future__ import annotations

import pytest

from repro.core.exceptions import (
    CycleError,
    DuplicateNodeError,
    EdgeError,
    NodeNotFoundError,
)
from repro.core.graph import DirectedAcyclicGraph


@pytest.fixture
def diamond() -> DirectedAcyclicGraph:
    """Classic diamond DAG: a -> {b, c} -> d with distinct WCETs."""
    return DirectedAcyclicGraph.from_dict(
        {"a": 1, "b": 2, "c": 5, "d": 3},
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
    )


class TestConstruction:
    def test_empty_graph(self):
        graph = DirectedAcyclicGraph()
        assert len(graph) == 0
        assert graph.node_count == 0
        assert graph.edge_count == 0
        assert graph.volume() == 0
        assert graph.critical_path_length() == 0
        assert graph.critical_path() == []

    def test_add_node_and_contains(self):
        graph = DirectedAcyclicGraph()
        graph.add_node("a", 3)
        assert "a" in graph
        assert "b" not in graph
        assert graph.wcet("a") == 3

    def test_add_duplicate_node_raises(self):
        graph = DirectedAcyclicGraph()
        graph.add_node("a", 1)
        with pytest.raises(DuplicateNodeError):
            graph.add_node("a", 2)

    def test_negative_wcet_rejected(self):
        graph = DirectedAcyclicGraph()
        with pytest.raises(ValueError):
            graph.add_node("a", -1)

    def test_set_negative_wcet_rejected(self, diamond):
        with pytest.raises(ValueError):
            diamond.set_wcet("a", -0.5)

    def test_add_edge_unknown_node_raises(self):
        graph = DirectedAcyclicGraph()
        graph.add_node("a", 1)
        with pytest.raises(NodeNotFoundError):
            graph.add_edge("a", "missing")

    def test_self_loop_rejected(self):
        graph = DirectedAcyclicGraph()
        graph.add_node("a", 1)
        with pytest.raises(EdgeError):
            graph.add_edge("a", "a")

    def test_duplicate_edge_rejected(self, diamond):
        with pytest.raises(EdgeError):
            diamond.add_edge("a", "b")

    def test_remove_edge(self, diamond):
        diamond.remove_edge("a", "b")
        assert not diamond.has_edge("a", "b")
        assert "b" in diamond.sources()

    def test_remove_missing_edge_raises(self, diamond):
        with pytest.raises(EdgeError):
            diamond.remove_edge("b", "a")

    def test_remove_node_removes_incident_edges(self, diamond):
        diamond.remove_node("b")
        assert "b" not in diamond
        assert diamond.edge_count == 2
        assert diamond.successors("a") == {"c"}
        assert diamond.predecessors("d") == {"c"}

    def test_wcet_of_unknown_node_raises(self, diamond):
        with pytest.raises(NodeNotFoundError):
            diamond.wcet("zzz")

    def test_from_dict_round_trip(self, diamond):
        rebuilt = DirectedAcyclicGraph.from_dict(diamond.wcets(), diamond.edges())
        assert rebuilt == diamond

    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.add_node("extra", 7)
        clone.remove_edge("a", "b")
        assert "extra" not in diamond
        assert diamond.has_edge("a", "b")
        assert clone != diamond

    def test_equality_against_other_types(self, diamond):
        assert diamond != "not a graph"


class TestBasicQueries:
    def test_degrees(self, diamond):
        assert diamond.out_degree("a") == 2
        assert diamond.in_degree("a") == 0
        assert diamond.in_degree("d") == 2
        assert diamond.out_degree("d") == 0

    def test_sources_and_sinks(self, diamond):
        assert diamond.sources() == ["a"]
        assert diamond.sinks() == ["d"]

    def test_nodes_preserve_insertion_order(self):
        graph = DirectedAcyclicGraph.from_dict({"z": 1, "a": 1, "m": 1})
        assert graph.nodes() == ["z", "a", "m"]

    def test_successors_and_predecessors(self, diamond):
        assert diamond.successors("a") == {"b", "c"}
        assert diamond.predecessors("d") == {"b", "c"}
        assert diamond.successors("d") == set()

    def test_edge_count(self, diamond):
        assert diamond.edge_count == 4
        assert len(diamond.edges()) == 4


class TestOrderingAndReachability:
    def test_topological_order_is_valid(self, diamond):
        order = diamond.topological_order()
        position = {node: index for index, node in enumerate(order)}
        for src, dst in diamond.edges():
            assert position[src] < position[dst]

    def test_topological_order_deterministic(self, diamond):
        assert diamond.topological_order() == diamond.topological_order()

    def test_cycle_detection(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 1, "b": 1, "c": 1}, [("a", "b"), ("b", "c")]
        )
        assert graph.is_acyclic()
        graph.add_edge("c", "a")
        assert not graph.is_acyclic()
        with pytest.raises(CycleError) as excinfo:
            graph.topological_order()
        assert excinfo.value.cycle is not None
        assert set(excinfo.value.cycle) == {"a", "b", "c"}

    def test_find_cycle_none_for_acyclic(self, diamond):
        assert diamond.find_cycle() is None

    def test_check_acyclic_passes(self, diamond):
        diamond.check_acyclic()

    def test_descendants_and_ancestors(self, diamond):
        assert diamond.descendants("a") == {"b", "c", "d"}
        assert diamond.ancestors("d") == {"a", "b", "c"}
        assert diamond.descendants("d") == set()
        assert diamond.ancestors("a") == set()

    def test_has_path(self, diamond):
        assert diamond.has_path("a", "d")
        assert diamond.has_path("a", "a")
        assert not diamond.has_path("b", "c")
        assert not diamond.has_path("d", "a")

    def test_are_parallel(self, diamond):
        assert diamond.are_parallel("b", "c")
        assert not diamond.are_parallel("a", "b")
        assert not diamond.are_parallel("b", "b")


class TestMetrics:
    def test_volume(self, diamond):
        assert diamond.volume() == 11

    def test_critical_path_length(self, diamond):
        # Longest path a -> c -> d = 1 + 5 + 3.
        assert diamond.critical_path_length() == 9

    def test_critical_path_nodes(self, diamond):
        assert diamond.critical_path() == ["a", "c", "d"]

    def test_critical_path_of_chain(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 2, "b": 3, "c": 4}, [("a", "b"), ("b", "c")]
        )
        assert graph.critical_path_length() == 9
        assert graph.critical_path() == ["a", "b", "c"]

    def test_critical_path_single_node(self):
        graph = DirectedAcyclicGraph.from_dict({"only": 7})
        assert graph.critical_path_length() == 7
        assert graph.critical_path() == ["only"]

    def test_earliest_finish_times(self, diamond):
        finish = diamond.earliest_finish_times()
        assert finish == {"a": 1, "b": 3, "c": 6, "d": 9}

    def test_longest_tail_lengths(self, diamond):
        tail = diamond.longest_tail_lengths()
        assert tail == {"a": 9, "b": 5, "c": 8, "d": 3}

    def test_longest_path_through(self, diamond):
        assert diamond.longest_path_through("c") == 9
        assert diamond.longest_path_through("b") == 6

    def test_lies_on_critical_path(self, diamond):
        assert diamond.lies_on_critical_path("a")
        assert diamond.lies_on_critical_path("c")
        assert diamond.lies_on_critical_path("d")
        assert not diamond.lies_on_critical_path("b")

    def test_zero_wcet_nodes_do_not_contribute(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 0, "b": 4, "z": 0}, [("a", "b"), ("b", "z")]
        )
        assert graph.volume() == 4
        assert graph.critical_path_length() == 4


class TestTransitiveEdges:
    def test_detect_transitive_edge(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 1, "b": 1, "c": 1},
            [("a", "b"), ("b", "c"), ("a", "c")],
        )
        assert graph.transitive_edges() == [("a", "c")]

    def test_no_transitive_edges_in_diamond(self, diamond):
        assert diamond.transitive_edges() == []

    def test_transitive_reduction_preserves_metrics_and_reachability(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 1, "b": 2, "c": 3, "d": 4},
            [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("a", "d")],
        )
        reduced = graph.transitive_reduction()
        assert reduced.transitive_edges() == []
        assert reduced.volume() == graph.volume()
        assert reduced.critical_path_length() == graph.critical_path_length()
        assert reduced.descendants("a") == graph.descendants("a")
        assert reduced.edge_count == 3

    def test_transitive_closure(self, diamond):
        closure = diamond.transitive_closure()
        assert closure["a"] == {"b", "c", "d"}
        assert closure["d"] == set()


class TestSubgraphsAndEdits:
    def test_subgraph_induced(self, diamond):
        sub = diamond.subgraph({"a", "b", "d"})
        assert set(sub.nodes()) == {"a", "b", "d"}
        assert sub.has_edge("a", "b")
        assert sub.has_edge("b", "d")
        assert not sub.has_edge("a", "d")
        assert sub.wcet("b") == 2

    def test_subgraph_unknown_node_raises(self, diamond):
        with pytest.raises(NodeNotFoundError):
            diamond.subgraph({"a", "nope"})

    def test_relabelled(self, diamond):
        renamed = diamond.relabelled({"a": "source", "d": "sink"})
        assert "source" in renamed and "sink" in renamed
        assert renamed.has_edge("source", "b")
        assert renamed.has_edge("c", "sink")
        assert renamed.volume() == diamond.volume()

    def test_relabelled_collision_rejected(self, diamond):
        with pytest.raises(EdgeError):
            diamond.relabelled({"a": "b"})

    def test_with_unique_source_and_sink_adds_dummies(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 1, "b": 2, "c": 3}, [("a", "c"), ("b", "c")]
        )
        fixed = graph.with_unique_source_and_sink()
        assert len(fixed.sources()) == 1
        assert len(fixed.sinks()) == 1
        assert fixed.volume() == graph.volume()
        assert fixed.critical_path_length() == graph.critical_path_length()

    def test_with_unique_source_and_sink_noop_when_already_unique(self, diamond):
        fixed = diamond.with_unique_source_and_sink()
        assert fixed == diamond
