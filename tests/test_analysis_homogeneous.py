"""Unit tests for Equation 1 (:mod:`repro.analysis.homogeneous`)."""

from __future__ import annotations

import pytest

from repro.analysis.homogeneous import (
    graph_response_time,
    makespan_lower_bound,
    response_time,
)
from repro.analysis.results import Scenario
from repro.core.examples import figure1_task
from repro.core.exceptions import AnalysisError
from repro.core.graph import DirectedAcyclicGraph
from repro.core.task import DagTask


class TestEquationOne:
    def test_figure1_value(self):
        # len = 8, vol = 18, m = 2  ->  8 + 10/2 = 13 (quoted in the paper).
        result = response_time(figure1_task(), 2)
        assert result.bound == 13
        assert result.method == "hom"
        assert result.scenario is Scenario.NOT_APPLICABLE

    @pytest.mark.parametrize(
        "cores,expected",
        [(1, 18.0), (2, 13.0), (4, 10.5), (8, 9.25), (16, 8.625)],
    )
    def test_value_for_every_host_size(self, cores, expected):
        assert response_time(figure1_task(), cores).bound == expected

    def test_terms_are_recorded(self):
        result = response_time(figure1_task(), 4)
        assert result.terms["len"] == 8
        assert result.terms["vol"] == 18
        assert result.terms["interference"] == pytest.approx(2.5)
        assert result.cores == 4

    def test_single_core_bound_equals_volume(self):
        task = figure1_task()
        assert response_time(task, 1).bound == task.volume

    def test_bound_never_below_critical_path(self):
        task = figure1_task()
        assert response_time(task, 10_000).bound >= task.critical_path_length

    def test_bound_is_monotonically_non_increasing_in_m(self):
        task = figure1_task()
        bounds = [response_time(task, m).bound for m in range(1, 20)]
        assert all(a >= b for a, b in zip(bounds, bounds[1:]))

    def test_invalid_core_counts_rejected(self):
        with pytest.raises(AnalysisError):
            response_time(figure1_task(), 0)
        with pytest.raises(AnalysisError):
            response_time(figure1_task(), 2.5)  # type: ignore[arg-type]

    def test_sequential_chain_has_no_interference(self):
        task = DagTask.from_wcets(
            {"a": 3, "b": 4, "c": 5}, [("a", "b"), ("b", "c")]
        )
        result = response_time(task, 4)
        assert result.bound == 12
        assert result.interference() == 0


class TestGraphResponseTime:
    def test_matches_task_level_bound(self):
        task = figure1_task()
        assert graph_response_time(task.graph, 2) == response_time(task, 2).bound

    def test_empty_graph(self):
        assert graph_response_time(DirectedAcyclicGraph(), 4) == 0.0

    def test_sub_dag_with_multiple_sources(self):
        # G_par-like sub-DAG: two independent nodes.
        graph = DirectedAcyclicGraph.from_dict({"x": 4, "y": 6})
        assert graph_response_time(graph, 2) == 6 + 4 / 2

    def test_invalid_cores_rejected(self):
        with pytest.raises(AnalysisError):
            graph_response_time(DirectedAcyclicGraph.from_dict({"a": 1}), -1)


class TestMakespanLowerBound:
    def test_figure1_lower_bound(self):
        task = figure1_task()
        # max(len=8, host_vol/m=14/2=7, C_off=4) = 8.
        assert makespan_lower_bound(task, 2) == 8

    def test_load_bound_dominates_on_single_core(self):
        task = figure1_task()
        assert makespan_lower_bound(task, 1) == 14  # host volume

    def test_huge_offload_drives_the_bound_through_the_critical_path(self):
        task = figure1_task().with_offloaded_wcet(100)
        # The offloaded node drags the whole critical path to 1 + 2 + 100 + 1.
        assert makespan_lower_bound(task, 16) == 104
        assert makespan_lower_bound(task, 16) >= task.offloaded_wcet

    def test_lower_bound_never_exceeds_equation_one(self):
        task = figure1_task()
        for cores in (1, 2, 4, 8, 16):
            assert makespan_lower_bound(task, cores) <= response_time(task, cores).bound
