"""Unit and property tests for the random task generators (:mod:`repro.generator`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import GenerationError
from repro.core.validation import validate_graph, validate_task
from repro.generator.config import GeneratorConfig, OffloadConfig
from repro.generator.layered import LayeredConfig, LayeredDagGenerator, generate_layered_task
from repro.generator.offload import (
    assign_offloaded_wcet,
    make_heterogeneous,
    pin_offloaded_fraction,
    select_offloaded_node,
)
from repro.generator.presets import (
    CORE_COUNTS,
    LARGE_TASKS,
    LARGE_TASKS_FIG6,
    SMALL_TASKS,
    SMALL_TASKS_FIG7_M2,
    SMALL_TASKS_FIG7_M8,
    preset_by_name,
)
from repro.generator.random_dag import DagStructureGenerator, generate_graph, generate_host_task
from repro.generator.sweep import default_fraction_grid, offload_fraction_sweep

SMALL = GeneratorConfig(p_par=0.6, n_par=4, max_depth=3, n_min=3, n_max=40, c_min=1, c_max=50)


class TestGeneratorConfig:
    def test_longest_possible_path(self):
        assert SMALL_TASKS.longest_possible_path == 7
        assert LARGE_TASKS.longest_possible_path == 11

    def test_with_node_range(self):
        narrowed = LARGE_TASKS.with_node_range(100, 250)
        assert (narrowed.n_min, narrowed.n_max) == (100, 250)
        assert narrowed.n_par == LARGE_TASKS.n_par

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p_par": 1.5},
            {"p_par": -0.1},
            {"n_par": 1},
            {"max_depth": 0},
            {"n_min": 0},
            {"n_min": 10, "n_max": 5},
            {"c_min": -1},
            {"c_min": 10, "c_max": 5},
            {"max_attempts": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(GenerationError):
            GeneratorConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_fraction": 1.0},
            {"target_fraction": -0.2},
            {"max_fraction": 0.0},
            {"max_fraction": 1.0},
            {"minimum_wcet": -1},
        ],
    )
    def test_invalid_offload_parameters_rejected(self, kwargs):
        with pytest.raises(GenerationError):
            OffloadConfig(**kwargs)

    def test_offload_with_target_fraction(self):
        config = OffloadConfig().with_target_fraction(0.25)
        assert config.target_fraction == 0.25


class TestStructureGeneration:
    def test_node_count_respects_range(self):
        generator = DagStructureGenerator(SMALL, rng=123)
        for _ in range(20):
            graph = generator.generate_structure()
            assert SMALL.n_min <= graph.node_count <= SMALL.n_max

    def test_structural_model_assumptions_hold(self):
        generator = DagStructureGenerator(SMALL, rng=7)
        for _ in range(20):
            graph = generator.generate_structure()
            report = validate_graph(graph)
            assert report.is_valid, report.problems

    def test_longest_path_bounded_by_config(self):
        generator = DagStructureGenerator(SMALL, rng=11)
        for _ in range(20):
            graph = generator.generate_structure()
            # Path length in *nodes* is bounded by 2 * max_depth + 1.
            path = graph.critical_path()
            assert len(path) <= SMALL.longest_possible_path

    def test_wcets_within_bounds(self):
        graph = generate_graph(SMALL, rng=5)
        for node in graph.nodes():
            assert SMALL.c_min <= graph.wcet(node) <= SMALL.c_max
            assert float(graph.wcet(node)).is_integer()

    def test_same_seed_same_task(self):
        first = generate_host_task(SMALL, rng=42)
        second = generate_host_task(SMALL, rng=42)
        assert first.graph == second.graph

    def test_different_seeds_differ(self):
        first = generate_host_task(SMALL, rng=1)
        second = generate_host_task(SMALL, rng=2)
        assert first.graph != second.graph

    def test_generate_many(self):
        tasks = DagStructureGenerator(SMALL, rng=3).generate_many(5, prefix="job")
        assert len(tasks) == 5
        assert [task.name for task in tasks] == [f"job_{i}" for i in range(5)]

    def test_impossible_range_raises(self):
        # A single fork/join with >= 2 branches has at least 4 nodes, so a
        # forced-root-expansion generator can never produce 3-node DAGs only.
        impossible = GeneratorConfig(
            p_par=0.0,
            n_par=8,
            max_depth=5,
            n_min=1000,
            n_max=1001,
            max_attempts=5,
        )
        with pytest.raises(GenerationError):
            DagStructureGenerator(impossible, rng=0).generate_structure()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_paper_presets_generate_valid_tasks(self, seed):
        config = SMALL_TASKS_FIG7_M2
        task = generate_host_task(config, rng=seed)
        assert config.n_min <= task.node_count <= config.n_max
        assert validate_task(task).is_valid


class TestOffloadSelection:
    def test_select_offloaded_node_reproducible(self):
        task = generate_host_task(SMALL, rng=9)
        first = select_offloaded_node(task, rng=10)
        second = select_offloaded_node(task, rng=10)
        assert first.offloaded_node == second.offloaded_node
        assert first.offloaded_node in task.graph

    def test_exclude_source_sink(self):
        task = generate_host_task(SMALL, rng=9)
        config = OffloadConfig(exclude_source_sink=True)
        for seed in range(10):
            selected = select_offloaded_node(task, config, rng=seed)
            assert selected.offloaded_node not in task.graph.sources()
            assert selected.offloaded_node not in task.graph.sinks()

    def test_exclude_source_sink_with_tiny_graph_raises(self):
        from repro.core.task import DagTask

        tiny = DagTask.from_wcets({"a": 1, "b": 1}, [("a", "b")])
        with pytest.raises(GenerationError):
            select_offloaded_node(tiny, OffloadConfig(exclude_source_sink=True), rng=0)

    def test_pin_offloaded_fraction_exact(self):
        task = select_offloaded_node(generate_host_task(SMALL, rng=4), rng=4)
        for fraction in (0.05, 0.2, 0.5):
            pinned = pin_offloaded_fraction(task, fraction, minimum_wcet=0)
            assert pinned.offloaded_fraction() == pytest.approx(fraction)

    def test_pin_offloaded_fraction_respects_minimum(self):
        task = select_offloaded_node(generate_host_task(SMALL, rng=4), rng=4)
        pinned = pin_offloaded_fraction(task, 0.0001, minimum_wcet=1.0)
        assert pinned.offloaded_wcet == 1.0

    def test_pin_requires_offloaded_node(self):
        task = generate_host_task(SMALL, rng=4)
        with pytest.raises(GenerationError):
            pin_offloaded_fraction(task, 0.2)

    def test_pin_rejects_invalid_fraction(self):
        task = select_offloaded_node(generate_host_task(SMALL, rng=4), rng=4)
        with pytest.raises(GenerationError):
            pin_offloaded_fraction(task, 1.0)

    def test_assign_offloaded_wcet_below_max_fraction(self):
        task = select_offloaded_node(generate_host_task(SMALL, rng=4), rng=4)
        config = OffloadConfig(max_fraction=0.4)
        for seed in range(20):
            assigned = assign_offloaded_wcet(task, config, rng=seed)
            assert assigned.offloaded_wcet >= config.minimum_wcet
            # A rounded draw can exceed the target fraction only marginally.
            assert assigned.offloaded_fraction() <= 0.4 + 0.02

    def test_assign_requires_offloaded_node(self):
        with pytest.raises(GenerationError):
            assign_offloaded_wcet(generate_host_task(SMALL, rng=4))

    def test_make_heterogeneous_with_target(self):
        task = generate_host_task(SMALL, rng=6)
        hetero = make_heterogeneous(task, rng=6, target_fraction=0.3)
        assert hetero.is_heterogeneous
        assert hetero.offloaded_fraction() == pytest.approx(0.3, abs=0.02)

    def test_make_heterogeneous_uses_config_fraction(self):
        task = generate_host_task(SMALL, rng=6)
        hetero = make_heterogeneous(task, OffloadConfig(target_fraction=0.25), rng=6)
        assert hetero.offloaded_fraction() == pytest.approx(0.25, abs=0.02)


class TestSweep:
    def test_paired_sweep_reuses_structures(self):
        points = offload_fraction_sweep(
            [0.05, 0.3], dags_per_point=4, generator_config=SMALL, rng=1, paired=True
        )
        assert len(points) == 2
        assert all(len(point) == 4 for point in points)
        for first, second in zip(points[0].tasks, points[1].tasks):
            assert first.offloaded_node == second.offloaded_node
            assert set(first.graph.nodes()) == set(second.graph.nodes())
            assert first.offloaded_wcet < second.offloaded_wcet

    def test_unpaired_sweep_draws_new_structures(self):
        points = offload_fraction_sweep(
            [0.05, 0.3], dags_per_point=3, generator_config=SMALL, rng=1, paired=False
        )
        first_nodes = {tuple(sorted(map(repr, t.graph.nodes()))) for t in points[0].tasks}
        second_nodes = {tuple(sorted(map(repr, t.graph.nodes()))) for t in points[1].tasks}
        # Structures are drawn independently, so at least one differs.
        assert first_nodes != second_nodes or len(first_nodes) > 1

    def test_realised_fractions_close_to_target(self):
        points = offload_fraction_sweep(
            [0.2], dags_per_point=6, generator_config=SMALL, rng=2
        )
        for realised in points[0].realised_fractions():
            assert realised == pytest.approx(0.2, abs=0.02)

    def test_sweep_is_reproducible(self):
        first = offload_fraction_sweep([0.1], 3, SMALL, rng=5)
        second = offload_fraction_sweep([0.1], 3, SMALL, rng=5)
        for a, b in zip(first[0].tasks, second[0].tasks):
            assert a.graph == b.graph
            assert a.offloaded_node == b.offloaded_node

    def test_default_fraction_grid(self):
        grid = default_fraction_grid(0.01, 0.5, 8)
        assert len(grid) == 8
        assert grid[0] == pytest.approx(0.01)
        assert grid[-1] == pytest.approx(0.5)
        assert all(a < b for a, b in zip(grid, grid[1:]))

    def test_single_point_grid(self):
        assert default_fraction_grid(0.1, 0.5, 1) == [0.1]


class TestPresets:
    def test_core_counts_match_paper(self):
        assert CORE_COUNTS == (2, 4, 8, 16)

    def test_small_and_large_parameters(self):
        assert SMALL_TASKS.n_par == 6 and SMALL_TASKS.max_depth == 3
        assert LARGE_TASKS.n_par == 8 and LARGE_TASKS.max_depth == 5
        assert SMALL_TASKS_FIG7_M2.n_max == 20
        assert SMALL_TASKS_FIG7_M8.n_min == 30
        assert LARGE_TASKS_FIG6.n_max == 250

    def test_preset_lookup(self):
        assert preset_by_name("small") is SMALL_TASKS
        assert preset_by_name("large-fig6") is LARGE_TASKS_FIG6
        with pytest.raises(KeyError):
            preset_by_name("does-not-exist")


class TestLayeredGenerator:
    def test_structure_is_model_compliant(self):
        generator = LayeredDagGenerator(LayeredConfig(n_min=10, n_max=30), rng=3)
        for _ in range(10):
            graph = generator.generate_structure()
            report = validate_graph(graph)
            assert report.is_valid, report.problems

    def test_node_count_within_range(self):
        config = LayeredConfig(n_min=15, n_max=25)
        generator = LayeredDagGenerator(config, rng=3)
        for _ in range(10):
            graph = generator.generate_structure()
            # The transitive reduction may only remove edges, never nodes.
            assert graph.node_count <= config.n_max
            assert graph.node_count >= min(config.n_min, 3)

    def test_wcets_and_dummies(self):
        task = generate_layered_task(LayeredConfig(n_min=10, n_max=20), rng=8)
        assert task.graph.wcet("source") == 0
        assert task.graph.wcet("sink") == 0
        inner = [n for n in task.graph.nodes() if n not in ("source", "sink")]
        assert all(task.graph.wcet(node) >= 1 for node in inner)

    def test_reproducible(self):
        first = generate_layered_task(rng=21)
        second = generate_layered_task(rng=21)
        assert first.graph == second.graph

    def test_invalid_config_rejected(self):
        with pytest.raises(GenerationError):
            LayeredConfig(n_min=2, n_max=1)
        with pytest.raises(GenerationError):
            LayeredConfig(edge_probability=1.5)
        with pytest.raises(GenerationError):
            LayeredConfig(layers_min=0)

    def test_layered_tasks_work_with_the_full_pipeline(self):
        from repro.analysis.heterogeneous import response_time
        from repro.core.transformation import transform

        task = generate_layered_task(LayeredConfig(n_min=12, n_max=20), rng=5)
        hetero = make_heterogeneous(task, rng=5, target_fraction=0.2)
        transformed = transform(hetero)
        result = response_time(transformed, 4)
        assert result.bound >= hetero.critical_path_length
