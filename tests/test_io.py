"""Tests for JSON / DOT (de)serialisation (:mod:`repro.io`)."""

from __future__ import annotations

import pytest

from repro.core.examples import figure1_task, figure3_task
from repro.core.exceptions import SerializationError
from repro.core.task import TaskSet
from repro.core.transformation import transform
from repro.io.dot import load_dot, save_dot, task_from_dot, task_to_dot, transformed_to_dot
from repro.io.json_io import (
    load_task,
    load_taskset,
    save_task,
    save_taskset,
    task_from_dict,
    task_from_json,
    task_to_dict,
    task_to_json,
    taskset_from_dict,
    taskset_to_dict,
)


class TestJsonTasks:
    def test_dict_round_trip(self):
        task = figure1_task(period=50, deadline=40)
        task.metadata["origin"] = "unit-test"
        rebuilt = task_from_dict(task_to_dict(task))
        assert rebuilt.graph == task.graph
        assert rebuilt.offloaded_node == task.offloaded_node
        assert rebuilt.period == 50 and rebuilt.deadline == 40
        assert rebuilt.metadata["origin"] == "unit-test"

    def test_json_string_round_trip(self):
        task = figure3_task()
        rebuilt = task_from_json(task_to_json(task))
        assert rebuilt.graph == task.graph
        assert rebuilt.name == "figure3"

    def test_file_round_trip(self, tmp_path):
        task = figure1_task()
        path = save_task(task, tmp_path / "task.json")
        assert path.exists()
        assert load_task(path).graph == task.graph

    def test_analysis_results_survive_round_trip(self):
        from repro.analysis.heterogeneous import response_time

        task = figure1_task()
        rebuilt = task_from_json(task_to_json(task))
        assert response_time(rebuilt, 2).bound == response_time(task, 2).bound

    def test_missing_nodes_key_rejected(self):
        with pytest.raises(SerializationError):
            task_from_dict({"edges": []})

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            task_from_json("this is { not json")

    def test_edge_referencing_unknown_node_rejected(self):
        with pytest.raises(SerializationError):
            task_from_dict({"nodes": {"a": 1}, "edges": [["a", "b"]]})

    def test_malformed_edge_rejected(self):
        with pytest.raises(SerializationError):
            task_from_dict({"nodes": {"a": 1}, "edges": [["a"]]})

    def test_unknown_offloaded_node_rejected(self):
        with pytest.raises(SerializationError):
            task_from_dict({"nodes": {"a": 1}, "edges": [], "offloaded_node": "x"})

    def test_invalid_wcet_rejected(self):
        with pytest.raises(SerializationError):
            task_from_dict({"nodes": {"a": "heavy"}, "edges": []})

    def test_model_violation_rejected(self):
        with pytest.raises(SerializationError):
            # D > T violates the model and is caught while building the task.
            task_from_dict({"nodes": {"a": 1}, "edges": [], "period": 5, "deadline": 9})


class TestJsonTaskSets:
    def test_taskset_round_trip(self, tmp_path):
        tasks = TaskSet(
            [figure1_task(period=100), figure3_task(period=200)], name="system"
        )
        rebuilt = taskset_from_dict(taskset_to_dict(tasks))
        assert rebuilt.name == "system"
        assert len(rebuilt) == 2
        assert rebuilt[0].graph == tasks[0].graph
        path = save_taskset(tasks, tmp_path / "set.json")
        assert len(load_taskset(path)) == 2

    def test_invalid_taskset_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("[not json")
        with pytest.raises(SerializationError):
            load_taskset(path)


class TestDot:
    def test_export_contains_nodes_edges_and_offload_marker(self):
        text = task_to_dot(figure1_task())
        assert text.startswith("digraph")
        assert '"v_off"' in text
        assert "fillcolor=lightgrey" in text
        assert '"v1" -> "v2"' in text

    def test_round_trip_preserves_structure(self):
        task = figure1_task()
        rebuilt = task_from_dot(task_to_dot(task))
        assert rebuilt.graph == task.graph
        assert rebuilt.offloaded_node == "v_off"

    def test_file_round_trip(self, tmp_path):
        task = figure3_task()
        path = save_dot(task, tmp_path / "task.dot")
        rebuilt = load_dot(path)
        assert rebuilt.graph == task.graph

    def test_transformed_export_highlights_sync_and_gpar(self, tmp_path):
        transformed = transform(figure1_task())
        text = transformed_to_dot(transformed)
        assert "indianred" in text  # the sync node
        assert "penwidth=2" in text  # G_par members
        assert "darkgreen" in text  # edges added by the transformation
        path = save_dot(transformed, tmp_path / "prime.dot")
        assert path.read_text().startswith("digraph")

    def test_hand_written_dot_with_wcet_attributes(self):
        document = """
        digraph demo {
          a [wcet=2];
          b [label="b (5)"];
          off [wcet=3, offloaded=true];
          a -> b;
          a -> off;
        }
        """
        task = task_from_dot(document)
        assert task.graph.wcet("a") == 2
        assert task.graph.wcet("b") == 5
        assert task.offloaded_node == "off"

    def test_unparseable_line_rejected(self):
        with pytest.raises(SerializationError):
            task_from_dot("digraph x {\n  ???\n}")

    def test_empty_document_rejected(self):
        with pytest.raises(SerializationError):
            task_from_dot("digraph empty {\n}")
