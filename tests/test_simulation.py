"""Unit tests for the scheduling simulator (:mod:`repro.simulation`)."""

from __future__ import annotations

import pytest

from repro.core.examples import figure1_task, figure3_task
from repro.core.exceptions import SimulationError
from repro.core.task import DagTask
from repro.core.transformation import transform
from repro.simulation.engine import simulate, simulate_makespan
from repro.simulation.metrics import average_makespan, speedup, summarise_traces
from repro.simulation.platform import ACCELERATOR, HOST, INSTANT, Platform
from repro.simulation.schedulers import (
    BreadthFirstPolicy,
    CriticalPathFirstPolicy,
    DepthFirstPolicy,
    FixedPriorityPolicy,
    LongestFirstPolicy,
    RandomPolicy,
    ShortestFirstPolicy,
    policy_by_name,
)
from repro.simulation.trace import ExecutionTrace, NodeExecution
from repro.simulation.worst_case import exhaustive_worst_case, randomised_worst_case


class TestPlatform:
    def test_basic_properties(self):
        platform = Platform(host_cores=4, accelerators=2)
        assert platform.total_processors == 6
        assert platform.host_core_names() == ["core0", "core1", "core2", "core3"]
        assert platform.accelerator_names() == ["acc0", "acc1"]

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            Platform(host_cores=0)
        with pytest.raises(SimulationError):
            Platform(host_cores=2, accelerators=-1)


class TestEngineOnWorkedExample:
    def test_breadth_first_original_matches_figure_1c(self):
        # GOMP-style breadth-first picks v2 and v3 first (creation order),
        # which is precisely the pathological schedule of Figure 1(c).
        trace = simulate(figure1_task(), Platform(2, 1))
        trace.validate()
        assert trace.makespan() == 12
        v_off = trace.execution_of("v_off")
        assert v_off.resource_kind == ACCELERATOR
        # While v_off executes (7 -> 11) the host is fully idle.
        assert trace.host_idle_while_accelerator_busy() == pytest.approx(8)

    def test_breadth_first_transformed_matches_figure_2b(self):
        transformed = transform(figure1_task())
        trace = simulate(transformed.task, Platform(2, 1))
        trace.validate()
        assert trace.makespan() == 10
        sync = trace.execution_of("v_sync")
        assert sync.resource_kind == INSTANT
        assert sync.duration == 0
        # v_off and the G_par nodes start together right after v_sync.
        assert trace.execution_of("v_off").start == sync.finish
        assert trace.execution_of("v2").start == sync.finish
        assert trace.execution_of("v3").start == sync.finish

    def test_offload_disabled_runs_everything_on_host(self):
        trace = simulate(figure1_task(), Platform(2, 1), offload_enabled=False)
        trace.validate()
        assert trace.accelerator_executions() == []
        assert all(
            record.resource_kind in (HOST, INSTANT) for record in trace.executions
        )

    def test_makespan_shortcut(self):
        assert simulate_makespan(figure1_task(), 2) == 12

    def test_platform_can_be_an_integer(self):
        trace = simulate(figure1_task(), 4)
        assert trace.platform == Platform(4, 1)

    def test_infinite_parallelism_reaches_critical_path(self):
        task = figure3_task()
        # With far more cores than nodes, every node starts as soon as its
        # predecessors finish, so the makespan equals len(G).
        assert simulate_makespan(task, 64) == task.critical_path_length

    def test_single_core_makespan_equals_serialised_host_plus_overlap(self):
        task = figure1_task()
        makespan = simulate_makespan(task, 1)
        assert makespan >= task.host_volume()
        assert makespan <= task.volume

    def test_simulation_is_deterministic(self):
        task = figure3_task()
        first = simulate(task, 2)
        second = simulate(task, 2)
        assert [(r.node, r.start, r.finish) for r in first.executions] == [
            (r.node, r.start, r.finish) for r in second.executions
        ]

    def test_offload_without_accelerator_rejected(self):
        with pytest.raises(SimulationError):
            simulate(figure1_task(), Platform(2, 0))

    def test_offload_without_accelerator_allowed_when_disabled(self):
        trace = simulate(figure1_task(), Platform(2, 0), offload_enabled=False)
        assert trace.makespan() >= figure1_task().critical_path_length

    def test_cyclic_graph_rejected(self):
        task = DagTask.from_wcets({"a": 1, "b": 1}, [("a", "b")])
        task.graph.add_edge("b", "a")
        with pytest.raises(Exception):
            simulate(task, 2)

    def test_explicit_device_assignment(self):
        task = figure1_task()
        trace = simulate(
            task.as_homogeneous(),
            Platform(2, 2),
            device_assignment={"v_off": 1, "v2": 0},
        )
        trace.validate()
        assert trace.execution_of("v_off").resource == "acc1"
        assert trace.execution_of("v2").resource == "acc0"

    def test_device_assignment_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            simulate(figure1_task(), Platform(2, 1), device_assignment={"v_off": 3})

    def test_device_assignment_unknown_node_rejected(self):
        with pytest.raises(SimulationError):
            simulate(figure1_task(), Platform(2, 1), device_assignment={"ghost": 0})


class TestPolicies:
    def test_policy_names_and_lookup(self):
        for name in (
            "breadth-first",
            "depth-first",
            "critical-path-first",
            "shortest-first",
            "longest-first",
            "random",
        ):
            assert policy_by_name(name).name == name
        with pytest.raises(KeyError):
            policy_by_name("does-not-exist")

    def test_policies_produce_legal_schedules(self):
        task = figure3_task()
        for policy in (
            BreadthFirstPolicy(),
            DepthFirstPolicy(),
            CriticalPathFirstPolicy(),
            ShortestFirstPolicy(),
            LongestFirstPolicy(),
            RandomPolicy(3),
            FixedPriorityPolicy({node: i for i, node in enumerate(task.graph.nodes())}),
        ):
            trace = simulate(task, Platform(2, 1), policy)
            trace.validate()
            assert trace.policy_name == policy.name

    def test_policies_can_produce_different_makespans(self):
        task = figure1_task()
        makespans = {
            policy.name: simulate_makespan(task, 2, policy)
            for policy in (BreadthFirstPolicy(), CriticalPathFirstPolicy())
        }
        assert makespans["critical-path-first"] <= makespans["breadth-first"]
        assert makespans["critical-path-first"] == 8

    def test_random_policy_is_seeded(self):
        task = figure3_task()
        first = simulate_makespan(task, 2, RandomPolicy(7))
        second = simulate_makespan(task, 2, RandomPolicy(7))
        assert first == second

    def test_fixed_priority_reproduces_specific_schedule(self):
        # Prioritising v4 first avoids the Figure 1(c) pathology.
        task = figure1_task()
        policy = FixedPriorityPolicy({"v4": 0, "v2": 1, "v3": 2, "v1": 3, "v5": 4})
        assert simulate_makespan(task, 2, policy) < 12


class TestTraceQueriesAndValidation:
    def test_execution_of_unknown_node(self):
        trace = simulate(figure1_task(), 2)
        with pytest.raises(SimulationError):
            trace.execution_of("ghost")

    def test_utilisation_bounds(self):
        trace = simulate(figure1_task(), 2)
        assert 0 <= trace.host_utilisation() <= 1
        assert 0 <= trace.accelerator_utilisation() <= 1

    def test_busy_time_accounting(self):
        task = figure1_task()
        trace = simulate(task, 2)
        assert trace.busy_time(HOST) == task.host_volume()
        assert trace.busy_time(ACCELERATOR) == task.offloaded_wcet

    def test_as_rows(self):
        trace = simulate(figure1_task(), 2)
        rows = trace.as_rows()
        assert len(rows) == 6
        assert {"node", "start", "finish", "duration", "ready", "resource_kind", "resource"} <= set(
            rows[0]
        )

    def test_empty_trace_metrics(self):
        trace = ExecutionTrace(task=figure1_task(), platform=Platform(2, 1))
        assert trace.makespan() == 0
        assert trace.start_time() == 0
        assert trace.host_utilisation() == 0

    def test_validation_catches_missing_node(self):
        trace = simulate(figure1_task(), 2)
        trace.executions.pop()
        with pytest.raises(SimulationError):
            trace.validate()

    def test_validation_catches_precedence_violation(self):
        trace = simulate(figure1_task(), 2)
        broken = []
        for record in trace.executions:
            if record.node == "v5":
                broken.append(
                    NodeExecution(
                        node="v5",
                        start=0.0,
                        finish=record.duration,
                        resource_kind=record.resource_kind,
                        resource=record.resource,
                        ready=0.0,
                    )
                )
            else:
                broken.append(record)
        trace.executions = broken
        with pytest.raises(SimulationError):
            trace.validate()

    def test_validation_catches_wrong_wcet(self):
        trace = simulate(figure1_task(), 2)
        record = trace.executions[0]
        trace.executions[0] = NodeExecution(
            node=record.node,
            start=record.start,
            finish=record.finish + 1,
            resource_kind=record.resource_kind,
            resource=record.resource,
            ready=record.ready,
        )
        with pytest.raises(SimulationError):
            trace.validate()

    def test_validation_catches_capacity_violation(self):
        task = figure1_task()
        trace = simulate(task, 2)
        # Re-label every host execution onto the same core at the same time.
        trace.executions = [
            NodeExecution(
                node=r.node,
                start=0.0 if r.resource_kind == HOST else r.start,
                finish=r.duration if r.resource_kind == HOST else r.finish,
                resource_kind=r.resource_kind,
                resource="core0" if r.resource_kind == HOST else r.resource,
                ready=0.0,
            )
            for r in trace.executions
        ]
        with pytest.raises(SimulationError):
            trace.validate()

    def test_validation_catches_offloaded_node_on_host(self):
        trace = simulate(figure1_task(), 2)
        trace.executions = [
            NodeExecution(
                node=r.node,
                start=r.start,
                finish=r.finish,
                resource_kind=HOST if r.node == "v_off" else r.resource_kind,
                resource="core0" if r.node == "v_off" else r.resource,
                ready=r.ready,
            )
            for r in trace.executions
        ]
        trace.device_assignment = None
        with pytest.raises(SimulationError):
            trace.validate()

    def test_queueing_delay_is_non_negative(self):
        trace = simulate(figure3_task(), 2)
        for record in trace.executions:
            assert record.queueing_delay >= 0


class TestWorstCaseSearch:
    def test_exhaustive_reproduces_figure_1c(self):
        result = exhaustive_worst_case(figure1_task(), Platform(2, 1))
        assert result.makespan == 12
        assert result.explored == 720  # 6 non-zero-WCET nodes -> 6! orderings
        result.trace.validate()

    def test_exhaustive_exceeds_naive_bound(self):
        from repro.analysis.heterogeneous import naive_unsafe_response_time

        naive = naive_unsafe_response_time(figure1_task(), 2).bound
        worst = exhaustive_worst_case(figure1_task(), Platform(2, 1)).makespan
        assert worst > naive  # the unsafe bound is indeed unsafe

    def test_exhaustive_rejects_large_tasks(self):
        with pytest.raises(SimulationError):
            exhaustive_worst_case(figure3_task(), Platform(2, 1))

    def test_randomised_is_a_lower_bound_on_exhaustive(self):
        task = figure1_task()
        exhaustive = exhaustive_worst_case(task, Platform(2, 1)).makespan
        randomised = randomised_worst_case(task, Platform(2, 1), samples=50, rng=0)
        assert randomised.makespan <= exhaustive
        assert randomised.explored == 50

    def test_randomised_requires_samples(self):
        with pytest.raises(SimulationError):
            randomised_worst_case(figure1_task(), Platform(2, 1), samples=0)

    def test_worst_case_of_transformed_task_is_bounded_by_rhet(self):
        from repro.analysis.heterogeneous import response_time

        transformed = transform(figure1_task())
        worst = exhaustive_worst_case(transformed.task, Platform(2, 1)).makespan
        assert worst <= response_time(transformed, 2).bound


class TestMetrics:
    def test_summarise_traces(self):
        task = figure1_task()
        traces = [simulate(task, m) for m in (1, 2, 4)]
        stats = summarise_traces(traces)
        assert stats.count == 3
        assert stats.min_makespan <= stats.mean_makespan <= stats.max_makespan
        assert stats.median_makespan >= stats.min_makespan
        assert set(stats.as_dict()) >= {"count", "mean_makespan", "max_makespan"}

    def test_summarise_empty_batch_raises(self):
        with pytest.raises(ValueError):
            summarise_traces([])

    def test_average_makespan(self):
        task = figure1_task()
        traces = [simulate(task, 2), simulate(task, 2)]
        assert average_makespan(traces) == 12

    def test_average_of_empty_batch_raises(self):
        with pytest.raises(ValueError):
            average_makespan([])

    def test_speedup(self):
        assert speedup([10, 10], [5, 5]) == 2
        with pytest.raises(ValueError):
            speedup([], [1])
        with pytest.raises(ZeroDivisionError):
            speedup([1], [0])
