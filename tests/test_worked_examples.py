"""Regression tests pinning the paper's worked examples (Figures 1–3).

The Figure 1 numbers are also asserted by the experiment and simulation
tests; this module additionally pins the *structural* facts of both example
tasks so that accidental edits to :mod:`repro.core.examples` (which the
documentation, the benchmarks and many tests rely on) are caught directly.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyse
from repro.core.examples import figure1_task, figure2_expected_edges, figure3_task
from repro.core.transformation import transform
from repro.core.validation import validate_task


class TestFigure1Task:
    def test_structure(self):
        task = figure1_task()
        assert task.node_count == 6
        assert task.graph.edge_count == 7
        assert task.offloaded_node == "v_off"
        assert task.graph.sources() == ["v1"]
        assert task.graph.sinks() == ["v5"]
        assert validate_task(task).is_valid

    def test_paper_metrics(self):
        task = figure1_task()
        assert task.volume == 18
        assert task.critical_path_length == 8
        assert task.critical_path() == ["v1", "v3", "v5"]
        assert task.offloaded_wcet == 4

    def test_all_three_bounds(self):
        results = analyse(figure1_task(), 2)
        assert results["hom"].bound == 13
        assert results["naive"].bound == 11
        assert results["het"].bound == 12

    def test_timing_parameters_are_optional(self):
        assert figure1_task().period is None
        timed = figure1_task(period=30, deadline=25)
        assert timed.period == 30 and timed.deadline == 25

    def test_expected_transformed_edges_are_consistent(self):
        edges = figure2_expected_edges()
        assert ("v_sync", "v_off") in edges
        assert ("v4", "v_sync") in edges
        assert len(edges) == 8


class TestFigure3Task:
    def test_structure(self):
        task = figure3_task()
        assert task.node_count == 12
        assert task.graph.sources() == ["v1"]
        assert task.graph.sinks() == ["v10"]
        assert validate_task(task).is_valid

    def test_predecessor_classification(self):
        task = figure3_task()
        assert task.graph.predecessors("v_off") == {"v8", "v9"}
        assert task.predecessors_of_offloaded() == {"v1", "v3", "v8", "v9"}
        assert task.successors_of_offloaded() == {"v10"}
        assert task.parallel_nodes_to_offloaded() == {
            "v2",
            "v4",
            "v5",
            "v6",
            "v7",
            "v11",
        }

    def test_metrics(self):
        task = figure3_task()
        assert task.volume == sum(
            [2, 3, 4, 5, 3, 1, 2, 3, 2, 2, 4, 6]
        )
        # Critical path: v1 -> v3 -> v8 -> v_off -> v10.
        assert task.critical_path_length == 2 + 4 + 3 + 6 + 2
        assert task.offloaded_on_critical_path()

    def test_transformation_covers_every_algorithm_branch(self):
        transformed = transform(figure3_task())
        rerouted = set(transformed.rerouted_edges)
        # One direct-predecessor parallel edge and two indirect ones.
        assert ("v8", "v11") in rerouted
        assert ("v1", "v2") in rerouted
        assert ("v3", "v7") in rerouted
        assert len(transformed.direct_predecessors) == 2

    @pytest.mark.parametrize("cores", [2, 4])
    def test_heterogeneous_bound_beats_homogeneous_on_small_hosts(self, cores):
        results = analyse(figure3_task(), cores)
        # C_off is ~16% of the volume here, comfortably past the crossover
        # for small hosts.
        assert results["het"].bound <= results["hom"].bound

    def test_homogeneous_bound_can_win_on_large_hosts(self):
        # The transformation stretches the critical path from 17 to 19; with
        # m = 8 the interference term it saves is divided by 8 and no longer
        # compensates the elongation -- exactly the effect behind the
        # small-C_off region of Figures 6 and 9.
        results = analyse(figure3_task(), 8)
        assert results["hom"].bound < results["het"].bound
