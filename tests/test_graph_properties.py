"""Property-based tests of the DAG substrate against a networkx oracle."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import DirectedAcyclicGraph

from strategies import make_random_host_task


def _to_networkx(graph: DirectedAcyclicGraph) -> nx.DiGraph:
    oracle = nx.DiGraph()
    for node in graph.nodes():
        oracle.add_node(node, wcet=graph.wcet(node))
    oracle.add_edges_from(graph.edges())
    return oracle


def _longest_path_length_weighted(oracle: nx.DiGraph) -> float:
    """Node-weighted longest path length computed independently with networkx."""
    best = 0.0
    finish: dict = {}
    for node in nx.topological_sort(oracle):
        incoming = max(
            (finish[p] for p in oracle.predecessors(node)), default=0.0
        )
        finish[node] = incoming + oracle.nodes[node]["wcet"]
        best = max(best, finish[node])
    return best


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_topological_order_respects_every_edge(seed):
    graph = make_random_host_task(seed).graph
    order = graph.topological_order()
    assert sorted(map(repr, order)) == sorted(map(repr, graph.nodes()))
    position = {node: index for index, node in enumerate(order)}
    for src, dst in graph.edges():
        assert position[src] < position[dst]


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_reachability_matches_networkx(seed):
    graph = make_random_host_task(seed).graph
    oracle = _to_networkx(graph)
    for node in graph.nodes():
        assert graph.descendants(node) == nx.descendants(oracle, node)
        assert graph.ancestors(node) == nx.ancestors(oracle, node)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_critical_path_matches_networkx(seed):
    graph = make_random_host_task(seed).graph
    oracle = _to_networkx(graph)
    assert graph.critical_path_length() == _longest_path_length_weighted(oracle)
    # The reported critical path must itself be a path of that exact length.
    path = graph.critical_path()
    assert sum(graph.wcet(node) for node in path) == graph.critical_path_length()
    for first, second in zip(path, path[1:]):
        assert graph.has_edge(first, second)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_longest_path_through_is_bounded_by_critical_path(seed):
    graph = make_random_host_task(seed).graph
    length = graph.critical_path_length()
    on_critical = 0
    for node in graph.nodes():
        through = graph.longest_path_through(node)
        assert through <= length + 1e-9
        if graph.lies_on_critical_path(node):
            on_critical += 1
            assert through == length
    # At least the nodes of the reported critical path lie on one.
    assert on_critical >= len(graph.critical_path())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_transitive_reduction_matches_networkx(seed):
    graph = make_random_host_task(seed).graph
    # Add a few transitive shortcuts so the reduction has something to do.
    closure = graph.transitive_closure()
    added = 0
    for node in graph.nodes():
        for descendant in sorted(closure[node], key=repr):
            if not graph.has_edge(node, descendant) and added < 5:
                # Only add an edge if it is genuinely transitive (a longer
                # path exists), which is true by construction here.
                if any(
                    descendant in closure[mid] for mid in graph.successors(node)
                ):
                    graph.add_edge(node, descendant)
                    added += 1
    reduced = graph.transitive_reduction()
    oracle = nx.transitive_reduction(_to_networkx(graph))
    assert set(reduced.edges()) == set(oracle.edges())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_generated_graphs_have_single_source_and_sink(seed):
    graph = make_random_host_task(seed).graph
    assert len(graph.sources()) == 1
    assert len(graph.sinks()) == 1
    assert graph.is_acyclic()
    assert graph.transitive_edges() == []


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_are_parallel_is_symmetric_and_consistent(seed):
    graph = make_random_host_task(seed, n_max=20).graph
    nodes = graph.nodes()
    for first in nodes[:8]:
        for second in nodes[:8]:
            if first == second:
                assert not graph.are_parallel(first, second)
                continue
            assert graph.are_parallel(first, second) == graph.are_parallel(
                second, first
            )
            assert graph.are_parallel(first, second) == (
                not graph.has_path(first, second)
                and not graph.has_path(second, first)
            )
