"""Unit tests for the task model (:mod:`repro.core.task`)."""

from __future__ import annotations

import pytest

from repro.core.examples import figure1_task
from repro.core.exceptions import ValidationError
from repro.core.graph import DirectedAcyclicGraph
from repro.core.task import DagTask, TaskSet


@pytest.fixture
def hetero_task() -> DagTask:
    return figure1_task(period=30, deadline=20)


@pytest.fixture
def homo_task() -> DagTask:
    graph = DirectedAcyclicGraph.from_dict(
        {"a": 2, "b": 4, "c": 4, "d": 2},
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
    )
    return DagTask(graph=graph, period=24, name="homo")


class TestConstruction:
    def test_from_wcets(self):
        task = DagTask.from_wcets(
            {"a": 1, "b": 2}, [("a", "b")], offloaded_node="b", period=10
        )
        assert task.volume == 3
        assert task.offloaded_node == "b"
        assert task.deadline == 10  # defaults to the period

    def test_offloaded_node_must_exist(self):
        graph = DirectedAcyclicGraph.from_dict({"a": 1})
        with pytest.raises(ValidationError):
            DagTask(graph=graph, offloaded_node="ghost")

    def test_unconstrained_deadline_rejected(self):
        graph = DirectedAcyclicGraph.from_dict({"a": 1})
        with pytest.raises(ValidationError):
            DagTask(graph=graph, period=10, deadline=12)

    def test_copy_is_deep(self, hetero_task):
        clone = hetero_task.copy()
        clone.graph.set_wcet("v1", 99)
        clone.metadata["k"] = "v"
        assert hetero_task.graph.wcet("v1") == 1
        assert "k" not in hetero_task.metadata


class TestHeterogeneityAccessors:
    def test_is_heterogeneous(self, hetero_task, homo_task):
        assert hetero_task.is_heterogeneous
        assert not homo_task.is_heterogeneous

    def test_offloaded_wcet(self, hetero_task, homo_task):
        assert hetero_task.offloaded_wcet == 4
        assert homo_task.offloaded_wcet == 0

    def test_host_nodes_and_volume(self, hetero_task):
        assert "v_off" not in hetero_task.host_nodes()
        assert hetero_task.host_volume() == hetero_task.volume - 4

    def test_offloaded_fraction(self, hetero_task):
        assert hetero_task.offloaded_fraction() == pytest.approx(4 / 18)

    def test_offloaded_fraction_of_homogeneous_task(self, homo_task):
        assert homo_task.offloaded_fraction() == 0.0

    def test_with_offloaded_wcet(self, hetero_task):
        updated = hetero_task.with_offloaded_wcet(10)
        assert updated.offloaded_wcet == 10
        assert hetero_task.offloaded_wcet == 4  # original untouched
        assert updated.volume == hetero_task.volume + 6

    def test_with_offloaded_wcet_requires_offloaded_node(self, homo_task):
        with pytest.raises(ValidationError):
            homo_task.with_offloaded_wcet(5)

    def test_with_offloaded_node_and_as_homogeneous(self, hetero_task):
        moved = hetero_task.with_offloaded_node("v2")
        assert moved.offloaded_node == "v2"
        assert moved.offloaded_wcet == 4  # v2's own WCET
        plain = hetero_task.as_homogeneous()
        assert plain.offloaded_node is None

    def test_with_offloaded_node_unknown(self, hetero_task):
        with pytest.raises(ValidationError):
            hetero_task.with_offloaded_node("ghost")


class TestMetrics:
    def test_volume_and_length(self, hetero_task):
        assert hetero_task.volume == 18
        assert hetero_task.critical_path_length == 8
        assert hetero_task.critical_path() == ["v1", "v3", "v5"]
        assert hetero_task.node_count == 6

    def test_utilisation_and_density(self, hetero_task):
        assert hetero_task.utilisation() == pytest.approx(18 / 30)
        assert hetero_task.density() == pytest.approx(18 / 20)

    def test_utilisation_requires_period(self):
        task = DagTask.from_wcets({"a": 1}, [])
        with pytest.raises(ValidationError):
            task.utilisation()
        with pytest.raises(ValidationError):
            task.density()

    def test_parallelism(self, hetero_task):
        assert hetero_task.parallelism() == pytest.approx(18 / 8)

    def test_parallelism_of_empty_graph(self):
        task = DagTask(graph=DirectedAcyclicGraph())
        assert task.parallelism() == 0.0

    def test_feasible_on_infinite_cores(self, hetero_task):
        assert hetero_task.is_feasible_on_infinite_cores()
        tight = figure1_task(period=10, deadline=7)
        assert not tight.is_feasible_on_infinite_cores()


class TestStructuralShortcuts:
    def test_predecessors_and_successors_of_offloaded(self, hetero_task):
        assert hetero_task.predecessors_of_offloaded() == {"v1", "v4"}
        assert hetero_task.successors_of_offloaded() == {"v5"}

    def test_parallel_nodes_to_offloaded(self, hetero_task):
        assert hetero_task.parallel_nodes_to_offloaded() == {"v2", "v3"}

    def test_structural_shortcuts_of_homogeneous_task(self, homo_task):
        assert homo_task.predecessors_of_offloaded() == set()
        assert homo_task.successors_of_offloaded() == set()
        assert homo_task.parallel_nodes_to_offloaded() == set()
        assert not homo_task.offloaded_on_critical_path()

    def test_offloaded_on_critical_path(self, hetero_task):
        # With C_off = 4 the path v1 -> v4 -> v_off -> v5 ties the critical
        # path length (8), so v_off lies on *a* critical path of G.
        assert hetero_task.offloaded_on_critical_path()
        lighter = hetero_task.with_offloaded_wcet(3)
        assert not lighter.offloaded_on_critical_path()
        heavier = hetero_task.with_offloaded_wcet(20)
        assert heavier.offloaded_on_critical_path()


class TestTaskSet:
    def test_add_iterate_and_index(self, hetero_task, homo_task):
        tasks = TaskSet(name="system")
        tasks.add(hetero_task)
        tasks.add(homo_task)
        assert len(tasks) == 2
        assert tasks[0] is hetero_task
        assert [task.name for task in tasks] == [hetero_task.name, "homo"]

    def test_total_utilisation_and_density(self, hetero_task, homo_task):
        tasks = TaskSet([hetero_task, homo_task])
        assert tasks.total_utilisation() == pytest.approx(18 / 30 + 12 / 24)
        assert tasks.total_density() == pytest.approx(18 / 20 + 12 / 24)

    def test_hyperperiod(self, hetero_task, homo_task):
        tasks = TaskSet([hetero_task, homo_task])
        assert tasks.hyperperiod() == 120

    def test_hyperperiod_requires_periods(self):
        tasks = TaskSet([DagTask.from_wcets({"a": 1}, [])])
        with pytest.raises(ValidationError):
            tasks.hyperperiod()

    def test_hyperperiod_requires_integer_periods(self):
        tasks = TaskSet([DagTask.from_wcets({"a": 1}, [], period=2.5)])
        with pytest.raises(ValidationError):
            tasks.hyperperiod()

    def test_hyperperiod_of_empty_set(self):
        assert TaskSet().hyperperiod() == 0

    def test_heterogeneous_and_homogeneous_partitions(self, hetero_task, homo_task):
        tasks = TaskSet([hetero_task, homo_task])
        assert tasks.heterogeneous_tasks() == [hetero_task]
        assert tasks.homogeneous_tasks() == [homo_task]
