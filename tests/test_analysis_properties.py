"""Property-based soundness and sanity tests of the response-time analyses.

The central claims verified here on randomly generated tasks:

* ``R_het(tau')`` upper-bounds the makespan of *every* simulated
  work-conserving schedule of the transformed task (Theorem 1's soundness);
* ``R_hom(tau)`` upper-bounds the makespan of every simulated schedule of the
  original heterogeneous task (the baseline the paper compares against);
* the proof obligations of each scenario (non-negative interference terms,
  the ``len(G_par) > C_off`` implication of Scenario 1, ...);
* both bounds are monotonically non-increasing in the number of cores.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.heterogeneous import classify_scenario, response_time
from repro.analysis.homogeneous import graph_response_time
from repro.analysis.homogeneous import response_time as homogeneous_response_time
from repro.analysis.results import Scenario
from repro.core.transformation import transform
from repro.simulation.engine import simulate
from repro.simulation.platform import Platform
from repro.simulation.schedulers import (
    BreadthFirstPolicy,
    DepthFirstPolicy,
    LongestFirstPolicy,
    RandomPolicy,
)

from strategies import make_random_heterogeneous_task

_SEEDS = st.integers(min_value=0, max_value=4_000)
_FRACTIONS = st.floats(min_value=0.01, max_value=0.65, allow_nan=False)
_CORES = st.sampled_from([1, 2, 3, 4, 8])


@settings(max_examples=40, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
def test_heterogeneous_bound_is_safe_for_simulated_schedules(seed, fraction, cores):
    task = make_random_heterogeneous_task(seed, fraction, n_max=30)
    transformed = transform(task)
    bound = response_time(transformed, cores).bound
    platform = Platform(host_cores=cores, accelerators=1)
    for policy in (
        BreadthFirstPolicy(),
        DepthFirstPolicy(),
        LongestFirstPolicy(),
        RandomPolicy(seed),
    ):
        trace = simulate(transformed.task, platform, policy)
        assert trace.makespan() <= bound + 1e-6


@settings(max_examples=40, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
def test_homogeneous_bound_is_safe_for_the_original_task(seed, fraction, cores):
    task = make_random_heterogeneous_task(seed, fraction, n_max=30)
    bound = homogeneous_response_time(task, cores).bound
    platform = Platform(host_cores=cores, accelerators=1)
    for policy in (BreadthFirstPolicy(), RandomPolicy(seed + 1)):
        trace = simulate(task, platform, policy)
        assert trace.makespan() <= bound + 1e-6


@settings(max_examples=60, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
def test_scenario_proof_obligations(seed, fraction, cores):
    task = make_random_heterogeneous_task(seed, fraction)
    transformed = transform(task)
    scenario = classify_scenario(transformed, cores)
    result = response_time(transformed, cores, scenario=scenario)
    length = transformed.transformed_length()
    volume = transformed.transformed_volume()
    assert result.interference() >= -1e-9
    if scenario is Scenario.SCENARIO_1:
        # v_off off the critical path implies some G_par path dominates C_off
        # and that its WCET never appears on the critical path.
        assert volume - length >= transformed.offloaded_wcet - 1e-9
        assert transformed.gpar_length() >= transformed.offloaded_wcet - 1e-9
    else:
        # v_off on the critical path implies no G_par node is on it.
        assert volume - length >= transformed.gpar_volume() - 1e-9
        gpar_bound = graph_response_time(transformed.gpar, cores)
        if scenario is Scenario.SCENARIO_2_1:
            assert transformed.offloaded_wcet >= gpar_bound - 1e-6
        else:
            assert transformed.offloaded_wcet <= gpar_bound + 1e-6


@settings(max_examples=40, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS)
def test_bounds_are_monotone_in_core_count(seed, fraction):
    task = make_random_heterogeneous_task(seed, fraction)
    transformed = transform(task)
    het = [response_time(transformed, m).bound for m in (1, 2, 4, 8, 16, 32)]
    hom = [homogeneous_response_time(task, m).bound for m in (1, 2, 4, 8, 16, 32)]
    assert all(a >= b - 1e-9 for a, b in zip(het, het[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(hom, hom[1:]))


@settings(max_examples=40, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
def test_bounds_never_fall_below_structural_lower_bounds(seed, fraction, cores):
    task = make_random_heterogeneous_task(seed, fraction)
    transformed = transform(task)
    het = response_time(transformed, cores).bound
    assert het >= transformed.original.critical_path_length - 1e-9
    assert het >= task.host_volume() / cores - 1e-9
    assert het >= task.offloaded_wcet - 1e-9


@settings(max_examples=40, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
def test_relationship_with_equation_one_on_the_transformed_task(seed, fraction, cores):
    """How Theorem 1 relates to Eq. 1 evaluated on the *transformed* graph.

    In Scenarios 1 and 2.1 the theorem only subtracts workload from the
    interference term, so it can never exceed ``R_hom(tau')``.  In Scenario
    2.2 the substitution of ``C_off`` by ``R_hom(G_par)`` on the critical path
    can exceed Eq. 1 by at most ``len(G_par)(1 - 1/m) - C_off`` (a
    reproduction finding documented in EXPERIMENTS.md); the bound remains
    sound, as the simulation-based safety tests show.
    """
    task = make_random_heterogeneous_task(seed, fraction)
    transformed = transform(task)
    result = response_time(transformed, cores)
    hom_on_transformed = homogeneous_response_time(transformed.task, cores).bound
    if result.scenario in (Scenario.SCENARIO_1, Scenario.SCENARIO_2_1):
        assert result.bound <= hom_on_transformed + 1e-9
    else:
        slack = transformed.gpar_length() * (1.0 - 1.0 / cores) - transformed.offloaded_wcet
        assert result.bound <= hom_on_transformed + max(0.0, slack) + 1e-9


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS, cores=_CORES)
def test_zero_fraction_offload_keeps_bounds_close_to_homogeneous(seed, cores):
    """With a negligible C_off the two analyses should nearly coincide."""
    task = make_random_heterogeneous_task(seed, 0.0)
    assert task.offloaded_wcet == pytest.approx(1.0)
    transformed = transform(task)
    het = response_time(transformed, cores).bound
    hom = homogeneous_response_time(task, cores).bound
    # The sync node can stretch the critical path, but never by more than the
    # length of the path leading to v_off (bounded by len(G)).
    assert het <= hom + task.critical_path_length
