"""Tests of the long-lived evaluation service (:mod:`repro.service`, PR 5).

Covers the acceptance criteria of the serving layer:

* fingerprint stability (node-ordering permutations, pickle round trips)
  and sensitivity (any behavioural change alters the hash);
* LRU byte-cap eviction with hit/miss/eviction counters;
* micro-batcher coalescing, drain-on-close and failure fan-out;
* a threaded burst of >= 100 mixed simulate/analyse requests returning
  **bit-identical** results to sequential single-cell evaluation, with
  ``stats()`` proving coalescing (batches << requests) and a second
  identical burst served >= 10x faster from the cache;
* HTTP round trips through the ``json_io`` payloads on an ephemeral port;
* a hypothesis property: cached and uncached answers always agree.
"""

from __future__ import annotations

import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.batch import analyse_many
from repro.core.examples import figure1_task
from repro.core.exceptions import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.core.task import DagTask
from repro.ilp.makespan import minimum_makespan
from repro.service import (
    BatchRequest,
    EvaluationService,
    MicroBatcher,
    ResultCache,
    ServiceClient,
    analysis_payload,
    makespan_payload,
    platform_fingerprint,
    policy_fingerprint,
    request_fingerprint,
    start_server,
    task_fingerprint,
)
from repro.service.cache import estimate_size
from repro.simulation.engine import simulate_makespan
from repro.simulation.platform import Platform
from repro.simulation.schedulers import RandomPolicy, policy_by_name

from strategies import make_random_heterogeneous_task

# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
FAST_BATCHING = dict(flush_interval=0.05, quiet_interval=0.001)


def permuted_copy(task: DagTask) -> DagTask:
    """Rebuild ``task`` with reversed node/edge insertion order."""
    graph = task.graph
    wcets = {node: graph.wcet(node) for node in reversed(graph.nodes())}
    edges = list(reversed(graph.edges()))
    clone = DagTask.from_wcets(
        wcets,
        edges,
        offloaded_node=task.offloaded_node,
        period=task.period,
        deadline=task.deadline,
        name="permuted-" + task.name,
    )
    return clone


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_node_ordering_permutation_hashes_equal(self):
        task = figure1_task(period=20, deadline=15)
        clone = permuted_copy(task)
        assert list(clone.graph.nodes()) != list(task.graph.nodes())
        assert task_fingerprint(clone) == task_fingerprint(task)
        assert clone.compiled().fingerprint() == task.compiled().fingerprint()

    @given(seed=st.integers(0, 2**20), fraction=st.sampled_from([0.05, 0.2, 0.5]))
    @settings(max_examples=20, deadline=None)
    def test_random_tasks_permutation_stable(self, seed, fraction):
        task = make_random_heterogeneous_task(seed, fraction, n_max=25)
        assert task_fingerprint(permuted_copy(task)) == task_fingerprint(task)

    def test_pickle_round_trip_stable(self):
        task = make_random_heterogeneous_task(7, 0.2)
        clone = pickle.loads(pickle.dumps(task))
        assert task_fingerprint(clone) == task_fingerprint(task)
        compiled = pickle.loads(pickle.dumps(task.compiled()))
        assert compiled.fingerprint() == task.compiled().fingerprint()

    def test_name_and_metadata_are_ignored(self):
        task = make_random_heterogeneous_task(3, 0.2)
        renamed = task.copy()
        renamed.name = "other"
        renamed.metadata["note"] = "ignored"
        assert task_fingerprint(renamed) == task_fingerprint(task)

    def test_behavioural_changes_alter_the_hash(self):
        task = make_random_heterogeneous_task(11, 0.2)
        fingerprint = task_fingerprint(task)
        assert task_fingerprint(task.with_offloaded_wcet(task.offloaded_wcet + 1)) \
            != fingerprint
        assert task_fingerprint(task.as_homogeneous()) != fingerprint
        other_offload = next(
            node for node in task.graph.nodes() if node != task.offloaded_node
        )
        assert task_fingerprint(task.with_offloaded_node(other_offload)) \
            != fingerprint
        retimed = task.copy()
        retimed.period = (task.period or 0) + 1000
        retimed.deadline = retimed.period
        assert task_fingerprint(retimed) != fingerprint

    def test_platform_and_policy_fingerprints(self):
        assert platform_fingerprint(4) == platform_fingerprint(Platform(4, 1))
        assert platform_fingerprint(Platform(4, 2)) != platform_fingerprint(4)
        assert policy_fingerprint("random", 1) != policy_fingerprint("random", 2)
        assert policy_fingerprint("breadth-first") != policy_fingerprint(
            "depth-first"
        )
        assert policy_fingerprint("fixed-priority", None, {"a": 1.0, "b": 2.0}) \
            == policy_fingerprint("fixed-priority", None, {"b": 2.0, "a": 1.0})
        # Keys are looked up by raw identity by FixedPriorityPolicy, so an
        # int-keyed and a str-keyed table are different specs.
        assert policy_fingerprint("fixed-priority", None, {3: 0.0}) \
            != policy_fingerprint("fixed-priority", None, {"3": 0.0})

    def test_request_fingerprint_separates_kinds(self):
        task_fp = task_fingerprint(figure1_task())
        assert request_fingerprint("simulate", task_fp, 2) != request_fingerprint(
            "analyse", task_fp, 2
        )


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_lru_byte_cap_eviction_order(self):
        payload = {"makespan": 1.0}
        entry = estimate_size("k0") + estimate_size(payload) + 128
        cache = ResultCache(max_bytes=entry * 3)
        for key in ("k0", "k1", "k2"):
            assert cache.put(key, dict(payload))
        assert cache.get("k0") is not None  # refresh k0: k1 becomes LRU
        cache.put("k3", dict(payload))
        assert "k1" not in cache and "k0" in cache
        assert "k2" in cache and "k3" in cache
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 3
        assert stats["bytes"] <= cache.max_bytes

    def test_oversized_entry_rejected(self):
        cache = ResultCache(max_bytes=256)
        assert not cache.put("huge", "x" * 10_000)
        assert cache.stats()["rejected"] == 1
        assert len(cache) == 0

    def test_replacement_does_not_leak_bytes(self):
        cache = ResultCache(max_bytes=1 << 20)
        cache.put("key", {"makespan": 1.0})
        before = cache.bytes_used
        for _ in range(10):
            cache.put("key", {"makespan": 2.0})
        assert cache.bytes_used == before
        assert cache.get("key") == {"makespan": 2.0}

    def test_hit_miss_counters_and_peek(self):
        cache = ResultCache()
        assert cache.get("absent") is None
        cache.put("key", 1)
        assert cache.get("key") == 1
        assert cache.peek("key") == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_threaded_access_is_safe(self):
        cache = ResultCache(max_bytes=1 << 16)

        def worker(base: int) -> None:
            for i in range(200):
                cache.put(f"k{base}-{i % 17}", {"value": i})
                cache.get(f"k{base}-{(i + 3) % 17}")

        threads = [threading.Thread(target=worker, args=(b,)) for b in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.bytes_used <= cache.max_bytes


# ----------------------------------------------------------------------
# Micro-batcher
# ----------------------------------------------------------------------
def _request(index: int) -> BatchRequest:
    return BatchRequest(
        kind="simulate",
        fingerprint=f"request-{index}",
        group_key=("group",),
        task=None,
        params={},
    )


class TestMicroBatcher:
    def test_burst_coalesces_into_few_batches(self):
        def execute(batch):
            time.sleep(0.005)
            for request in batch:
                request.resolve(len(batch))

        batcher = MicroBatcher(execute, **FAST_BATCHING)
        requests = [_request(i) for i in range(60)]
        with ThreadPoolExecutor(30) as pool:
            sizes = list(
                pool.map(lambda r: batcher.submit(r).wait(timeout=30), requests)
            )
        stats = batcher.stats()
        batcher.close()
        assert stats["submitted"] == 60
        assert stats["batches"] < 20  # batches << requests
        assert max(sizes) == stats["largest_batch"] > 1

    def test_executor_failure_fans_out(self):
        def execute(batch):
            raise RuntimeError("engine exploded")

        batcher = MicroBatcher(execute, **FAST_BATCHING)
        request = batcher.submit(_request(0))
        with pytest.raises(RuntimeError, match="engine exploded"):
            request.wait(timeout=30)
        batcher.close()

    def test_unresolved_requests_fail_defensively(self):
        def execute(batch):
            batch[0].resolve("served")  # forget the rest

        batcher = MicroBatcher(execute, **FAST_BATCHING)
        first = batcher.submit(_request(0))
        second = batcher.submit(_request(1))
        assert first.wait(timeout=30) == "served"
        with pytest.raises(ServiceError, match="unresolved"):
            second.wait(timeout=30)
        batcher.close()

    def test_close_drains_pending_requests(self):
        served: list[str] = []

        def execute(batch):
            for request in batch:
                served.append(request.fingerprint)
                request.resolve(True)

        # Long quiet/deadline windows: the requests are still parked when
        # close() runs, so the drain path must serve them.
        batcher = MicroBatcher(execute, flush_interval=30.0, quiet_interval=10.0)
        requests = [batcher.submit(_request(i)) for i in range(10)]
        assert batcher.stats()["pending"] == 10
        batcher.close(timeout=30)
        assert all(request.wait(timeout=1) for request in requests)
        assert len(served) == 10
        assert batcher.stats()["flushes"]["close"] == 1
        with pytest.raises(ServiceClosedError):
            batcher.submit(_request(99))

    def test_lone_request_flushes_on_quiet_not_deadline(self):
        def execute(batch):
            for request in batch:
                request.resolve(True)

        batcher = MicroBatcher(execute, flush_interval=30.0, quiet_interval=0.002)
        start = time.perf_counter()
        assert batcher.submit(_request(0)).wait(timeout=30)
        elapsed = time.perf_counter() - start
        batcher.close()
        assert elapsed < 5.0  # quiet trigger, not the 30 s deadline


# ----------------------------------------------------------------------
# Evaluation service: the acceptance burst
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def burst_workload():
    """>= 100 mixed simulate/analyse requests over fresh (cold-cache) tasks.

    The sequential reference is computed *by the test, after* the service's
    cold burst: evaluating it first would warm the shared graph/transform
    caches and flatten the cold-vs-cached timing comparison the acceptance
    criterion asserts on.  (Values are cache-state-independent either way.)
    """
    import numpy as np

    from repro.generator.config import GeneratorConfig, OffloadConfig
    from repro.generator.offload import make_heterogeneous
    from repro.generator.random_dag import DagStructureGenerator

    # Uniformly large, dense DAGs (the paper's upper range): the cold burst
    # must do real engine work for the >= 10x cached-speedup assertion to
    # have headroom on noisy CI runners.
    config = GeneratorConfig(
        p_par=0.8, n_par=6, max_depth=5, n_min=150, n_max=250, c_min=1, c_max=100
    )
    tasks = []
    for seed in range(40):
        rng = np.random.default_rng(seed)
        task = DagStructureGenerator(config, rng).generate_task()
        tasks.append(
            make_heterogeneous(task, OffloadConfig(), rng, target_fraction=0.2)
        )
    requests = []
    for task in tasks:
        # Each request carries its *own* task object (``task.copy()`` drops
        # the graph caches), the shape an HTTP client produces -- every
        # request parses its own document.  The service must still dedupe
        # and cache across them: fingerprints are content hashes, not
        # object identities.
        for cores in (2, 8):
            requests.append(("simulate", task.copy(), cores))
        requests.append(("analyse", task.copy(), (2, 4, 8, 16)))
        requests.append(("analyse", task.copy(), (3,)))
    assert len(requests) >= 100
    return requests


def _sequential_reference(requests) -> list:
    reference = []
    for kind, task, arg in requests:
        if kind == "simulate":
            reference.append(
                simulate_makespan(
                    task, Platform(arg), policy_by_name("breadth-first")
                )
            )
        else:
            reference.append(analysis_payload(analyse_many([task], arg)[0]))
    return reference


def _fire_burst(service: EvaluationService, requests, pool) -> list:
    def one(entry):
        kind, task, arg = entry
        if kind == "simulate":
            return service.submit_simulation(task, arg, timeout=120)
        return service.submit_analysis(task, arg, timeout=120)

    return list(pool.map(one, requests))


class TestEvaluationServiceBurst:
    def test_threaded_burst_matches_sequential_and_caches(self, burst_workload):
        requests = burst_workload
        with EvaluationService(**FAST_BATCHING) as service, ThreadPoolExecutor(
            32
        ) as pool:
            list(pool.map(lambda x: x, range(64)))  # spawn the pool threads
            start = time.perf_counter()
            cold = _fire_burst(service, requests, pool)
            cold_s = time.perf_counter() - start

            # Bit-identical to sequential single-cell evaluation (floats
            # compare exactly; analysis payloads compare structurally).
            reference = _sequential_reference(requests)
            assert cold == reference

            stats = service.stats()
            total = stats["requests"]["total"]
            assert total == len(requests)
            # Coalescing proof: batches << requests.
            assert stats["batching"]["batches"] * 4 <= total
            assert stats["batching"]["largest_batch"] > 1
            # Grid coalescing may evaluate a few unrequested cells, but the
            # waste is bounded by the facade's 2x grid-density limit.
            assert stats["engine"]["evaluated_cells"] <= 2 * total

            # Second identical burst: pure cache hits, >= 10x faster.
            warm_s = float("inf")
            for _ in range(3):  # best of three shields against scheduler noise
                start = time.perf_counter()
                warm = _fire_burst(service, requests, pool)
                warm_s = min(warm_s, time.perf_counter() - start)
            assert warm == reference
            warm_stats = service.stats()
            hits = warm_stats["cache"]["hits"]
            assert hits >= len(requests)  # the whole second burst was hits
            assert warm_stats["engine"]["evaluated_cells"] == stats["engine"][
                "evaluated_cells"
            ]
            assert cold_s >= 10 * warm_s, (
                f"cached burst not >= 10x faster: cold {cold_s:.3f}s vs "
                f"warm {warm_s:.3f}s"
            )

    def test_duplicate_requests_coalesce_to_one_evaluation(self):
        task = make_random_heterogeneous_task(99, 0.3, n_max=40)
        with EvaluationService(**FAST_BATCHING) as service:
            with ThreadPoolExecutor(25) as pool:
                results = list(
                    pool.map(
                        lambda _: service.submit_simulation(task, 4, timeout=120),
                        range(50),
                    )
                )
            assert len(set(results)) == 1
            stats = service.stats()
            assert stats["engine"]["evaluated_cells"] == 1
            joins_and_hits = (
                stats["engine"]["inflight_joins"] + stats["cache"]["hits"]
            )
            assert joins_and_hits == 49


class TestEvaluationServiceSemantics:
    def test_makespan_requests_use_the_exact_oracles(self):
        task = figure1_task(period=20, deadline=15)
        with EvaluationService(**FAST_BATCHING) as service:
            payload = service.submit_makespan(task, 2, timeout=300)
            reference = makespan_payload(minimum_makespan(task, 2))
            assert payload["makespan"] == reference["makespan"] == 8.0
            assert payload["optimal"]
            assert payload["start_times"] == reference["start_times"]
            assert service.submit_makespan(task, 2, timeout=300) == payload

    def test_random_policy_requires_a_seed(self):
        with EvaluationService(**FAST_BATCHING) as service:
            with pytest.raises(ValueError, match="policy_seed"):
                service.submit_simulation(figure1_task(), 2, policy="random")

    def test_seeded_random_policy_matches_one_shot_and_caches(self):
        task = make_random_heterogeneous_task(5, 0.2, n_max=40)
        with EvaluationService(**FAST_BATCHING) as service:
            value = service.submit_simulation(
                task, 2, policy="random", policy_seed=42, timeout=120
            )
            again = service.submit_simulation(
                task, 2, policy="random", policy_seed=42, timeout=120
            )
            expected = simulate_makespan(task, Platform(2), RandomPolicy(42))
            assert value == again == expected
            assert service.stats()["engine"]["solo_evaluations"] == 1

    def test_fixed_priority_table_round_trip(self):
        task = figure1_task()
        table = {node: float(i) for i, node in enumerate(task.graph.nodes())}
        with EvaluationService(**FAST_BATCHING) as service:
            value = service.submit_simulation(
                task, 2, policy="fixed-priority", priorities=table, timeout=120
            )
        expected = simulate_makespan(
            task, Platform(2), policy_by_name("fixed-priority")
        )
        # A complete creation-order table reproduces breadth-like FIFO only
        # by accident; just assert the service agrees with the one-shot run.
        from repro.simulation.schedulers import FixedPriorityPolicy

        assert value == simulate_makespan(
            task, Platform(2), FixedPriorityPolicy(table)
        )

    def test_priority_table_key_types_do_not_collide(self):
        # An int-keyed table matches the int node ids; a str-keyed one
        # matches nothing (every node falls back to +inf).  The service
        # must serve each spec its own one-shot answer rather than letting
        # them share a cache entry.
        from repro.simulation.schedulers import FixedPriorityPolicy

        # Fork of three parallel nodes (wcets 4, 3, 3) on m=2: which pair
        # starts first changes the makespan, so the int-keyed table (which
        # matches the int node ids) and the str-keyed one (which matches
        # nothing -> FIFO fallback) give different, individually-verified
        # answers.
        task = DagTask.from_wcets(
            {1: 1.0, 2: 4.0, 3: 3.0, 4: 3.0, 5: 1.0},
            [(1, 2), (1, 3), (1, 4), (2, 5), (3, 5), (4, 5)],
        )
        int_table = {3: 0.0, 4: 1.0}
        str_table = {str(node): value for node, value in int_table.items()}
        int_expected = simulate_makespan(
            task, Platform(2), FixedPriorityPolicy(int_table)
        )
        str_expected = simulate_makespan(
            task, Platform(2), FixedPriorityPolicy(str_table)
        )
        assert int_expected != str_expected  # the specs genuinely differ
        with EvaluationService(**FAST_BATCHING) as service:
            int_value = service.submit_simulation(
                task, 2, policy="fixed-priority", priorities=int_table, timeout=120
            )
            str_value = service.submit_simulation(
                task, 2, policy="fixed-priority", priorities=str_table, timeout=120
            )
        assert int_value == int_expected
        assert str_value == str_expected

    def test_seed_is_normalised_for_deterministic_policies(self):
        task = make_random_heterogeneous_task(31, 0.2, n_max=30)
        with EvaluationService(**FAST_BATCHING) as service:
            seeded = service.submit_simulation(
                task, 2, policy="breadth-first", policy_seed=7, timeout=120
            )
            unseeded = service.submit_simulation(
                task, 2, policy="breadth-first", timeout=120
            )
            assert seeded == unseeded
            # The seed is ignored by deterministic policies, so both
            # requests share one fingerprint: one evaluation, one hit.
            stats = service.stats()
            assert stats["engine"]["evaluated_cells"] == 1
            assert stats["cache"]["hits"] == 1

    def test_returned_payloads_are_copies(self):
        task = make_random_heterogeneous_task(17, 0.2, n_max=30)
        with EvaluationService(**FAST_BATCHING) as service:
            payload = service.submit_analysis(task, 2, timeout=120)
            payload["bounds"].clear()  # vandalise the caller's copy
            fresh = service.submit_analysis(task, 2, timeout=120)
            assert fresh["bounds"], "cache was poisoned by caller mutation"

    def test_cache_disabled_still_correct(self):
        task = make_random_heterogeneous_task(23, 0.2, n_max=30)
        with EvaluationService(cache_bytes=0, **FAST_BATCHING) as service:
            first = service.submit_simulation(task, 2, timeout=120)
            second = service.submit_simulation(task, 2, timeout=120)
            assert first == second == simulate_makespan(
                task, Platform(2), policy_by_name("breadth-first")
            )
            assert service.stats()["cache"]["entries"] == 0

    def test_unknown_policy_and_method_rejected(self):
        with EvaluationService(**FAST_BATCHING) as service:
            with pytest.raises(KeyError):
                service.submit_simulation(figure1_task(), 2, policy="no-such")
            with pytest.raises(ValueError):
                service.submit_makespan(figure1_task(), 2, method="no-such")

    def test_leader_enqueue_failure_releases_joiners(self):
        # If the leader's enqueue into the batcher fails (e.g. a close()
        # race), concurrent duplicates parked on its in-flight entry must
        # receive the failure instead of waiting forever.
        task = figure1_task()
        with EvaluationService(**FAST_BATCHING) as service:
            entered = threading.Event()
            release = threading.Event()

            def failing_submit(request):
                entered.set()
                assert release.wait(10)
                raise ServiceClosedError("forced enqueue failure")

            service._batcher.submit = failing_submit
            outcomes = []

            def submit(role):
                try:
                    service.submit_simulation(task, 2, timeout=30)
                    outcomes.append((role, "ok"))
                except ServiceClosedError:
                    outcomes.append((role, "closed"))

            leader = threading.Thread(target=submit, args=("leader",))
            leader.start()
            assert entered.wait(10)
            joiner = threading.Thread(target=submit, args=("joiner",))
            joiner.start()
            time.sleep(0.05)  # let the joiner park on the leader's event
            release.set()
            leader.join(timeout=10)
            joiner.join(timeout=10)
            assert not leader.is_alive() and not joiner.is_alive()
            assert sorted(outcomes) == [("joiner", "closed"), ("leader", "closed")]

    def test_infeasible_unrequested_grid_cell_does_not_fail_group_mates(self):
        # Hetero task on an accelerator platform + homogeneous task on an
        # accelerator-less one: both fine sequentially, but one flush grids
        # {both tasks} x {both platforms} and the *unrequested* cell
        # (hetero task, no accelerator) is infeasible.  The group must fall
        # back to per-request evaluation, not fail both clients.
        from strategies import make_random_host_task

        hetero = make_random_heterogeneous_task(1, 0.2, n_max=20)
        plain = make_random_host_task(2, n_max=20)
        service = EvaluationService(flush_interval=30.0, quiet_interval=10.0)
        with ThreadPoolExecutor(2) as pool:
            first = pool.submit(
                service.submit_simulation, hetero, Platform(2, 1), timeout=60
            )
            second = pool.submit(
                service.submit_simulation, plain, Platform(4, 0), timeout=60
            )
            while service.stats()["batching"]["pending"] < 2:
                time.sleep(0.001)
            service.close(timeout=60)
            policy = policy_by_name("breadth-first")
            assert first.result(60) == simulate_makespan(
                hetero, Platform(2, 1), policy
            )
            assert second.result(60) == simulate_makespan(
                plain, Platform(4, 0), policy
            )

    def test_invalid_request_fails_alone_in_a_coalesced_group(self):
        # A genuinely invalid request (offloading task, accelerator-less
        # platform) coalesced with a valid one: only the offender errors.
        from repro.core.exceptions import SimulationError

        bad_task = make_random_heterogeneous_task(3, 0.2, n_max=20)
        good_task = make_random_heterogeneous_task(4, 0.2, n_max=20)
        service = EvaluationService(flush_interval=30.0, quiet_interval=10.0)
        with ThreadPoolExecutor(2) as pool:
            bad = pool.submit(
                service.submit_simulation, bad_task, Platform(2, 0), timeout=60
            )
            good = pool.submit(
                service.submit_simulation, good_task, Platform(2, 1), timeout=60
            )
            while service.stats()["batching"]["pending"] < 2:
                time.sleep(0.001)
            service.close(timeout=60)
            assert good.result(60) == simulate_makespan(
                good_task, Platform(2, 1), policy_by_name("breadth-first")
            )
            with pytest.raises(SimulationError):
                bad.result(60)

    def test_close_drains_and_rejects_afterwards(self):
        tasks = [make_random_heterogeneous_task(s, 0.2, n_max=30) for s in range(8)]
        # Long quiet window: requests are still parked when close() runs.
        service = EvaluationService(flush_interval=30.0, quiet_interval=10.0)
        with ThreadPoolExecutor(8) as pool:
            futures = [
                pool.submit(service.submit_simulation, task, 2, timeout=120)
                for task in tasks
            ]
            while service.stats()["batching"]["pending"] < len(tasks):
                time.sleep(0.001)
            service.close(timeout=60)
            results = [future.result(timeout=60) for future in futures]
        expected = [
            simulate_makespan(task, Platform(2), policy_by_name("breadth-first"))
            for task in tasks
        ]
        assert results == expected
        with pytest.raises(ServiceClosedError):
            service.submit_simulation(tasks[0], 2)


# ----------------------------------------------------------------------
# Engine selection: measured crossover threshold + per-engine accounting
# ----------------------------------------------------------------------
class TestEngineSelectionAndThreshold:
    def test_constructor_threshold_overrides_calibration(self):
        with EvaluationService(vector_threshold=3, **FAST_BATCHING) as service:
            assert service.stats()["engine"]["vector_threshold"] == 3

    def test_env_threshold_overrides_calibration(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_THRESHOLD", "7")
        with EvaluationService(**FAST_BATCHING) as service:
            assert service.stats()["engine"]["vector_threshold"] == 7

    def test_explicit_threshold_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_THRESHOLD", "7")
        with EvaluationService(vector_threshold=2, **FAST_BATCHING) as service:
            assert service.stats()["engine"]["vector_threshold"] == 2

    def test_default_threshold_comes_from_calibration_table(self):
        from repro.simulation.calibration import vector_threshold

        with EvaluationService(**FAST_BATCHING) as service:
            assert (
                service.stats()["engine"]["vector_threshold"] == vector_threshold()
            )

    def test_by_engine_counters_and_prometheus_series(self):
        from repro.simulation.batch import resolve_engine

        tasks = [make_random_heterogeneous_task(s, 0.2, n_max=30) for s in range(4)]

        def burst(service):
            with ThreadPoolExecutor(4) as pool:
                return list(
                    pool.map(
                        lambda t: service.submit_simulation(t, 2, timeout=120),
                        tasks,
                    )
                )

        # Below the (huge) threshold every group runs on the dense engine.
        with EvaluationService(vector_threshold=10**6, **FAST_BATCHING) as service:
            dense_values = burst(service)
            by_engine = service.stats()["engine"]["by_engine"]
            assert by_engine["dense"] >= 1
            assert by_engine["lockstep"] == 0 and by_engine["compiled"] == 0
            rendered = service.metrics.render_prometheus()
            assert 'repro_service_sim_engine_total{engine="dense"}' in rendered

        # Threshold 1: every grid goes through the vector path, served by
        # whichever concrete engine "auto" resolves to on this machine.
        with EvaluationService(vector_threshold=1, **FAST_BATCHING) as service:
            vector_values = burst(service)
            by_engine = service.stats()["engine"]["by_engine"]
            assert by_engine["dense"] == 0
            assert by_engine[resolve_engine("auto")] >= 1
        # Engine choice never changes answers (the bit-identity contract).
        assert vector_values == dense_values

    def test_multi_policy_burst_coalesces_into_one_grid(self):
        # An ablation-shaped burst (every task under every deterministic
        # policy on one platform) must flush as a single task x platform x
        # policy grid: one batch, zero wasted cells.
        tasks = [
            make_random_heterogeneous_task(40 + s, 0.2, n_max=30) for s in range(3)
        ]
        policies = ["breadth-first", "shortest-first", "longest-first"]
        platform = Platform(2, 1)
        service = EvaluationService(
            flush_interval=30.0, quiet_interval=10.0, vector_threshold=1
        )
        with ThreadPoolExecutor(9) as pool:
            futures = {
                (index, name): pool.submit(
                    service.submit_simulation,
                    task,
                    platform,
                    policy=name,
                    timeout=60,
                )
                for index, task in enumerate(tasks)
                for name in policies
            }
            while service.stats()["batching"]["pending"] < 9:
                time.sleep(0.001)
            service.close(timeout=60)
            for index, task in enumerate(tasks):
                for name in policies:
                    assert futures[(index, name)].result(60) == (
                        simulate_makespan(task, platform, policy_by_name(name))
                    )
        stats = service.stats()
        assert stats["batching"]["batches"] == 1
        assert stats["engine"]["evaluated_cells"] == 9  # 3 tasks x 1 x 3 policies
        assert stats["engine"]["batches"] == 1


# ----------------------------------------------------------------------
# Property: cached and uncached answers always agree
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def property_service():
    with EvaluationService(**FAST_BATCHING) as service:
        yield service


class TestCachedUncachedAgreement:
    @given(
        seed=st.integers(0, 500),
        fraction=st.sampled_from([0.05, 0.2, 0.5]),
        cores=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_simulation_and_analysis_agree_with_one_shot(
        self, property_service, seed, fraction, cores
    ):
        task = make_random_heterogeneous_task(seed, fraction, n_max=25)
        uncached = property_service.submit_simulation(task, cores, timeout=120)
        cached = property_service.submit_simulation(task, cores, timeout=120)
        direct = simulate_makespan(
            task, Platform(cores), policy_by_name("breadth-first")
        )
        assert uncached == cached == direct

        first = property_service.submit_analysis(task, cores, timeout=120)
        second = property_service.submit_analysis(task, cores, timeout=120)
        assert first == second == analysis_payload(analyse_many([task], cores)[0])


# ----------------------------------------------------------------------
# HTTP transport round trip (ephemeral port)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def http_service():
    service = EvaluationService(**FAST_BATCHING)
    server, thread = start_server(service, port=0)
    client = ServiceClient(port=server.port, timeout=120)
    yield service, server, client
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    service.close()


class TestHTTPTransport:
    def test_health(self, http_service):
        _, _, client = http_service
        document = client.health()
        assert document["status"] == "ok"

    def test_simulate_round_trip(self, http_service):
        _, _, client = http_service
        task = figure1_task(period=20, deadline=15)
        makespan = client.simulate(task, cores=2)
        assert makespan == simulate_makespan(
            task, Platform(2), policy_by_name("breadth-first")
        )

    def test_analyse_round_trip(self, http_service):
        _, _, client = http_service
        task = figure1_task(period=20, deadline=15)
        payload = client.analyse(task, [2, 4])
        assert payload == analysis_payload(analyse_many([task], (2, 4))[0])
        methods = payload["bounds"][0]["methods"]
        assert {"hom", "het", "naive"} <= set(methods)

    def test_makespan_round_trip(self, http_service):
        _, _, client = http_service
        task = figure1_task(period=20, deadline=15)
        payload = client.makespan(task, 2, method="bnb")
        assert payload["makespan"] == 8.0
        assert payload["optimal"]

    def test_stats_reports_requests(self, http_service):
        service, _, client = http_service
        document = client.stats()
        assert document["requests"]["total"] >= 1
        assert document["requests"] == service.stats()["requests"]

    def test_error_paths(self, http_service):
        _, _, client = http_service
        task = figure1_task()
        with pytest.raises(ServiceError, match="unknown policy"):
            client.simulate(task, cores=2, policy="no-such")
        with pytest.raises(ServiceError, match="policy_seed"):
            client.simulate(task, cores=2, policy="random")
        with pytest.raises(ServiceError):
            client._request("/no-such-endpoint")
        with pytest.raises(ServiceError, match="missing the 'task'"):
            client._request("/simulate", {"cores": 2})

    def test_unreachable_server_raises_service_error(self):
        client = ServiceClient(port=1, timeout=1)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()


# ----------------------------------------------------------------------
# PR 7 regression: fixed-priority tables must bind identically on the wire
# ----------------------------------------------------------------------
class TestPriorityTableWireBinding:
    """JSON stringifies node ids; the client must preserve *binding*.

    ``FixedPriorityPolicy`` looks nodes up with plain ``==``/``hash``, so
    which table entries bind depends on key identity, not on how keys
    print.  A naive ``{str(k): v}`` serialisation changed the policy:
    int-keyed tables on int-noded tasks stopped binding server-side
    (the round-tripped task carries *string* nodes), and an int key that
    merely printed like some node name started binding where it never did
    in process.  The client now resolves binding against the actual task
    nodes and ships only bound entries under the node's wire name.
    """

    # Fork of three parallel nodes (wcets 4, 3, 3) on m=2: which pair
    # starts first changes the makespan, so bound and unbound tables give
    # provably different answers.
    _WCETS = {1: 1.0, 2: 4.0, 3: 3.0, 4: 3.0, 5: 1.0}
    _EDGES = [(1, 2), (1, 3), (1, 4), (2, 5), (3, 5), (4, 5)]

    def _simulate_local(self, task, table):
        from repro.simulation.schedulers import FixedPriorityPolicy

        return simulate_makespan(task, Platform(2), FixedPriorityPolicy(table))

    def test_int_keyed_table_bit_identical_via_client(self, http_service):
        service, _, client = http_service
        task = DagTask.from_wcets(self._WCETS, self._EDGES)
        table = {3: 0.0, 4: 1.0}
        expected = self._simulate_local(task, table)
        fallback = self._simulate_local(task, {})
        assert expected != fallback  # the table genuinely changes the run
        assert service.submit_simulation(
            task, 2, policy="fixed-priority", priorities=table, timeout=120
        ) == expected
        assert client.simulate(
            task, cores=2, policy="fixed-priority", priorities=table
        ) == expected

    def test_float_keys_bind_by_equality_not_representation(self, http_service):
        # 3.0 == 3 and hash(3.0) == hash(3): the float-keyed table binds
        # the int nodes in process, so it must bind over the wire too --
        # even though str(3.0) == "3.0" names no node.
        _, _, client = http_service
        task = DagTask.from_wcets(self._WCETS, self._EDGES)
        table = {3.0: 0.0, 4.0: 1.0}
        expected = self._simulate_local(task, table)
        assert expected != self._simulate_local(task, {})
        assert client.simulate(
            task, cores=2, policy="fixed-priority", priorities=table
        ) == expected

    def test_decoy_int_key_stays_inert_on_string_noded_task(self, http_service):
        # The same fork, but with nodes *named* "1".."5": an int key 3
        # prints like node "3" yet binds nothing in process (3 != "3"),
        # so it must bind nothing through the transport either.
        _, _, client = http_service
        task = DagTask.from_wcets(
            {str(node): wcet for node, wcet in self._WCETS.items()},
            [(str(src), str(dst)) for src, dst in self._EDGES],
        )
        decoy = {3: 0.0, 4: 1.0}
        inert = self._simulate_local(task, decoy)
        assert inert == self._simulate_local(task, {})  # inert in process
        bound = self._simulate_local(task, {"3": 0.0, "4": 1.0})
        assert bound != inert  # a naive str(k) wiring would return this
        assert client.simulate(
            task, cores=2, policy="fixed-priority", priorities=decoy
        ) == inert


# ----------------------------------------------------------------------
# PR 6 resilience: failure counters and lifecycle races
# ----------------------------------------------------------------------
PARKED_BATCHING = dict(flush_interval=30.0, quiet_interval=10.0)


class TestServiceResilience:
    def test_submit_vs_close_race_never_loses_a_request(self):
        # Hammer the submit()/close() race at the service level: every
        # submission must either return a real result or raise
        # ServiceClosedError -- never hang, never vanish.
        task = figure1_task(period=20, deadline=15)
        reference = simulate_makespan(
            task, Platform(2), policy_by_name("breadth-first")
        )
        for _ in range(10):
            service = EvaluationService(
                flush_interval=0.002, quiet_interval=0.0005
            )
            outcomes: list = []
            lock = threading.Lock()
            start = threading.Barrier(5)

            def submitter(seed, service=service, outcomes=outcomes, lock=lock, start=start):
                start.wait()
                for _ in range(5):
                    try:
                        value = service.submit_simulation(task, 2, timeout=30)
                        with lock:
                            outcomes.append(("ok", value))
                    except ServiceClosedError:
                        with lock:
                            outcomes.append(("closed", None))

            threads = [
                threading.Thread(target=submitter, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            start.wait()
            service.close()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()
            assert len(outcomes) == 20
            for status, value in outcomes:
                if status == "ok":
                    assert value == reference

    def test_failure_counters_stay_consistent(self):
        # One service, every failure mode at once: a caller-side timeout, a
        # batch-side parked expiry (same request -- the documented double
        # count), one shed request and one degraded oracle batch tripping
        # the breaker.  stats() must partition them consistently.
        from strategies import make_random_integer_heterogeneous_task

        tasks = [
            make_random_integer_heterogeneous_task(seed, 0.2, n_max=8)
            for seed in (500, 501, 502)
        ]
        service = EvaluationService(
            max_pending=2,
            oracle_budget=0.0,
            breaker_threshold=1,
            **PARKED_BATCHING,
        )
        outcome: dict = {}

        def background(task=tasks[0]):
            outcome["payload"] = service.submit_makespan(task, 2)

        worker = threading.Thread(target=background)
        worker.start()
        deadline = time.monotonic() + 10.0
        while (
            service.stats()["batching"]["pending"] < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        with pytest.raises(ServiceTimeoutError):
            service.submit_makespan(tasks[1], 2, timeout=0.05)
        with pytest.raises(ServiceOverloadedError) as shed_info:
            service.submit_makespan(tasks[2], 2)
        assert shed_info.value.retry_after > 0
        service.close()
        worker.join(timeout=30)
        assert not worker.is_alive()

        payload = outcome["payload"]  # the accepted request was resolved
        assert payload["degraded"] and not payload["optimal"]

        stats = service.stats()
        resilience = stats["resilience"]
        # tasks[1] timed out twice: once caller-side, once when its parked
        # deadline expired in the drain flush.
        assert resilience["timeouts"] == 2
        assert resilience["shed"] == 1
        assert resilience["shed"] == stats["batching"]["shed"]
        assert resilience["degraded"] == 1
        breaker = resilience["breaker"]
        assert breaker["trips"] == 1
        assert breaker["failures"] == 1
        assert breaker["state"] == "open"
        assert resilience["faults"]["enabled"] is False
        # All three submissions were counted; only tasks[0] reached an engine.
        assert stats["requests"]["makespan"] == 3
        assert stats["engine"]["batches"] == 1
