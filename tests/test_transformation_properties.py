"""Property-based tests of Algorithm 1 on randomly generated tasks."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transformation import transform
from repro.core.validation import validate_task

from strategies import make_random_heterogeneous_task

_SEEDS = st.integers(min_value=0, max_value=5_000)
_FRACTIONS = st.floats(min_value=0.01, max_value=0.6, allow_nan=False)


@settings(max_examples=50, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS)
def test_transformation_preserves_volume(seed, fraction):
    task = make_random_heterogeneous_task(seed, fraction)
    transformed = transform(task)
    assert transformed.transformed_volume() == task.volume


@settings(max_examples=50, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS)
def test_transformation_never_shortens_the_critical_path(seed, fraction):
    task = make_random_heterogeneous_task(seed, fraction)
    transformed = transform(task)
    assert transformed.transformed_length() >= task.critical_path_length - 1e-9


@settings(max_examples=50, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS)
def test_transformed_graph_satisfies_the_system_model(seed, fraction):
    task = make_random_heterogeneous_task(seed, fraction)
    transformed = transform(task)
    report = validate_task(transformed.task)
    assert report.is_valid, report.problems


@settings(max_examples=50, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS)
def test_gpar_is_exactly_the_set_of_parallel_nodes(seed, fraction):
    task = make_random_heterogeneous_task(seed, fraction)
    transformed = transform(task)
    expected = task.parallel_nodes_to_offloaded()
    assert transformed.gpar_nodes == expected
    # Every G_par edge must already exist in the original graph.
    for src, dst in transformed.gpar.edges():
        assert task.graph.has_edge(src, dst)


@settings(max_examples=50, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS)
def test_sync_point_guarantees_parallel_start(seed, fraction):
    """After the transformation no G_par node can start before v_sync.

    Structurally: every G_par node is a descendant of v_sync in G', and
    v_off's only predecessor is v_sync.  This is the property Theorem 1
    relies on.
    """
    task = make_random_heterogeneous_task(seed, fraction)
    transformed = transform(task)
    graph = transformed.graph
    descendants = graph.descendants(transformed.sync_node)
    assert transformed.gpar_nodes <= descendants
    assert graph.predecessors(transformed.offloaded_node) == {transformed.sync_node}
    assert graph.predecessors(transformed.sync_node) == transformed.direct_predecessors


@settings(max_examples=50, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS)
def test_reachability_outside_gpar_is_preserved(seed, fraction):
    """Predecessor/successor relations w.r.t. v_off survive the transformation."""
    task = make_random_heterogeneous_task(seed, fraction)
    transformed = transform(task)
    graph = transformed.graph
    v_off = transformed.offloaded_node
    for node in transformed.predecessors:
        assert graph.has_path(node, v_off)
    for node in transformed.successors:
        assert graph.has_path(v_off, node)


@settings(max_examples=50, deadline=None)
@given(seed=_SEEDS, fraction=_FRACTIONS)
def test_node_set_only_gains_the_sync_node(seed, fraction):
    task = make_random_heterogeneous_task(seed, fraction)
    transformed = transform(task)
    original_nodes = set(task.graph.nodes())
    transformed_nodes = set(transformed.graph.nodes())
    assert transformed_nodes == original_nodes | {transformed.sync_node}
    for node in original_nodes:
        assert transformed.graph.wcet(node) == task.graph.wcet(node)
