"""Golden regression test for the schedulability-under-load curve.

The expected curve is committed under
``benchmarks/results/workload_schedulability.json``.  The sweep exercises
the whole online-workload stack -- seeded stream-task generation, jittered
periodic arrivals, ``build_workload`` unrolling, and the shared-capacity
coupled lockstep simulator -- so a bit-identical golden pins all of it:
any change to draws, event ordering, or float evaluation order shows up
here.  The sweep must also be bit-identical under ``--jobs`` (each
(utilisation, policy) cell is a deterministic seeded simulation).

Regenerate the golden file (after an *intentional* change) with::

    PYTHONPATH=src python tests/test_workload_golden.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.workload import (
    POLICIES,
    UTILISATION_GRID,
    run_workload_schedulability,
)

GOLDEN_PATH = (
    Path(__file__).parent.parent
    / "benchmarks"
    / "results"
    / "workload_schedulability.json"
)


def _run(jobs=None) -> dict:
    return run_workload_schedulability(jobs=jobs).to_dict()


class TestWorkloadGolden:
    def test_matches_golden_curve(self):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert _run() == golden

    def test_bit_identical_under_jobs(self):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert _run(jobs=2) == golden

    def test_curve_shape(self):
        """Structural sanity of the committed curve itself.

        A valid schedulability curve is a miss *ratio* (within [0, 1])
        that is zero while the platform keeps up and high once the
        offered load exceeds capacity -- the knee is the whole point of
        the experiment, so its presence is asserted, not just the shape
        of the container.
        """
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        series = golden["series"]
        assert [entry["label"] for entry in series] == list(POLICIES)
        for entry in series:
            assert entry["x"] == list(UTILISATION_GRID)
            ratios = entry["y"]
            assert all(0.0 <= ratio <= 1.0 for ratio in ratios)
            # Underloaded left edge keeps every deadline ...
            assert ratios[0] == 0.0
            # ... and past saturation the stream backlog compounds.
            assert ratios[-1] > 0.25
        # Every sweep point simulates the same released-instance count
        # (the horizon scales with the mean period by construction).
        instances = golden["metadata"]["instances_per_point"]
        assert len(set(instances)) == 1 and instances[0] > 0


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(_run(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"golden curve written to {GOLDEN_PATH}")
    else:
        print(__doc__)
