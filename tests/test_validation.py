"""Unit tests for the system-model validators (:mod:`repro.core.validation`)."""

from __future__ import annotations

import pytest

from repro.core.examples import figure1_task, figure3_task
from repro.core.exceptions import ValidationError
from repro.core.graph import DirectedAcyclicGraph
from repro.core.task import DagTask
from repro.core.validation import normalise_task, validate_graph, validate_task


class TestValidateGraph:
    def test_valid_graph_passes(self):
        report = validate_graph(figure1_task().graph)
        assert report.is_valid
        assert bool(report)
        assert report.problems == []

    def test_empty_graph_rejected(self):
        report = validate_graph(DirectedAcyclicGraph())
        assert not report.is_valid
        assert "no nodes" in report.problems[0]

    def test_cycle_detected(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 1, "b": 1}, [("a", "b"), ("b", "a")]
        )
        report = validate_graph(graph)
        assert not report.is_valid
        assert any("cycle" in problem for problem in report.problems)

    def test_multiple_sources_detected(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 1, "b": 1, "c": 1}, [("a", "c"), ("b", "c")]
        )
        report = validate_graph(graph)
        assert any("source" in problem for problem in report.problems)
        relaxed = validate_graph(graph, require_single_source=False)
        assert relaxed.is_valid

    def test_multiple_sinks_detected(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 1, "b": 1, "c": 1}, [("a", "b"), ("a", "c")]
        )
        report = validate_graph(graph)
        assert any("sink" in problem for problem in report.problems)
        relaxed = validate_graph(graph, require_single_sink=False)
        assert relaxed.is_valid

    def test_transitive_edge_detected(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 1, "b": 1, "c": 1},
            [("a", "b"), ("b", "c"), ("a", "c")],
        )
        report = validate_graph(graph)
        assert any("transitive" in problem for problem in report.problems)
        relaxed = validate_graph(graph, forbid_transitive_edges=False)
        assert relaxed.is_valid

    def test_raise_if_invalid(self):
        report = validate_graph(DirectedAcyclicGraph())
        with pytest.raises(ValidationError):
            report.raise_if_invalid()


class TestValidateTask:
    def test_paper_examples_are_valid(self):
        assert validate_task(figure1_task()).is_valid
        assert validate_task(figure3_task()).is_valid

    def test_negative_period_rejected(self):
        task = DagTask.from_wcets({"a": 1}, [])
        task.period = -5
        report = validate_task(task)
        assert any("period" in problem for problem in report.problems)

    def test_negative_deadline_rejected(self):
        task = DagTask.from_wcets({"a": 1}, [])
        task.deadline = 0
        report = validate_task(task)
        assert any("deadline" in problem for problem in report.problems)

    def test_unconstrained_deadline_rejected(self):
        task = DagTask.from_wcets({"a": 1}, [], period=5)
        task.deadline = 9
        report = validate_task(task)
        assert any("constrained" in problem for problem in report.problems)

    def test_strict_mode_raises(self):
        task = DagTask.from_wcets({"a": 1}, [])
        task.period = -1
        with pytest.raises(ValidationError):
            validate_task(task, strict=True)

    def test_missing_offloaded_node_detected(self):
        task = figure1_task()
        task.offloaded_node = "ghost"
        report = validate_task(task)
        assert any("offloaded" in problem for problem in report.problems)


class TestNormaliseTask:
    def test_adds_dummy_source_and_sink(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 2, "b": 3, "c": 4}, [("a", "c"), ("b", "c")]
        )
        task = DagTask(graph=graph, name="fork")
        repaired = normalise_task(task)
        assert validate_task(repaired).is_valid
        assert repaired.volume == task.volume
        assert repaired.critical_path_length == task.critical_path_length

    def test_removes_transitive_edges(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 1, "b": 2, "c": 3},
            [("a", "b"), ("b", "c"), ("a", "c")],
        )
        task = DagTask(graph=graph)
        repaired = normalise_task(task)
        assert repaired.graph.transitive_edges() == []
        assert repaired.graph.descendants("a") == {"b", "c"}

    def test_preserves_offloaded_node_and_timing(self):
        task = figure1_task(period=40, deadline=30)
        repaired = normalise_task(task)
        assert repaired.offloaded_node == "v_off"
        assert repaired.period == 40
        assert repaired.deadline == 30

    def test_cyclic_graph_cannot_be_normalised(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 1, "b": 1}, [("a", "b"), ("b", "a")]
        )
        with pytest.raises(ValidationError):
            normalise_task(DagTask(graph=graph))

    def test_already_valid_task_is_unchanged(self):
        task = figure1_task()
        repaired = normalise_task(task)
        assert repaired.graph == task.graph
