"""Bit-identity of the dense simulation core against the trace engine.

The dense fast path (:mod:`repro.simulation.dense`) and the batched
:func:`~repro.simulation.batch.simulate_many` must reproduce the reference
trace engine's makespans *exactly* -- same floats, not approximately -- for
every policy, platform shape, device assignment and offload mode.  These
properties drive both implementations over random DAGs from the shared
strategies and compare with ``==``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiled import CompiledTask, compile_task
from repro.core.examples import figure1_task, figure3_task
from repro.core.graph import DirectedAcyclicGraph
from repro.core.task import DagTask
from repro.core.transformation import transform
from repro.simulation.batch import simulate_many
from repro.simulation.dense import simulate_makespan_dense
from repro.simulation.engine import simulate, simulate_makespan
from repro.simulation.platform import Platform
from repro.simulation.schedulers import (
    BreadthFirstPolicy,
    CriticalPathFirstPolicy,
    FixedPriorityPolicy,
    LongestFirstPolicy,
    RandomPolicy,
    ShortestFirstPolicy,
    policy_by_name,
    policy_supports_dense,
)

from strategies import make_random_heterogeneous_task

_SEEDS = st.integers(min_value=0, max_value=4_000)
_FRACTIONS = st.floats(min_value=0.01, max_value=0.6, allow_nan=False)
_CORES = st.sampled_from([1, 2, 3, 4])

#: Every registered policy, as factories so that each engine run gets a
#: fresh instance (RandomPolicy must replay the same stream on both paths).
_POLICY_NAMES = (
    "breadth-first",
    "depth-first",
    "critical-path-first",
    "shortest-first",
    "longest-first",
    "random",
    "fixed-priority",
)


def _policy_factories(task: DagTask, seed: int):
    for name in _POLICY_NAMES:
        yield name, lambda name=name: policy_by_name(name, rng=seed)
    # fixed-priority via the registry has an empty table; also exercise a
    # populated one (the worst-case search's usage pattern).
    yield "fixed-priority(populated)", lambda: FixedPriorityPolicy(
        {node: (seed + rank) % 5 for rank, node in enumerate(task.graph.nodes())}
    )


def _assert_identical(task, platform, factory, offload_enabled=True, assignment=None):
    reference = simulate(
        task,
        platform,
        factory(),
        offload_enabled=offload_enabled,
        device_assignment=assignment,
    ).makespan()
    dense = simulate_makespan_dense(
        task,
        platform,
        factory(),
        offload_enabled=offload_enabled,
        device_assignment=assignment,
    )
    assert dense == reference


class TestDenseBitIdentity:
    @settings(max_examples=30, deadline=None)
    @given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
    def test_all_policies_match_on_heterogeneous_tasks(self, seed, fraction, cores):
        task = make_random_heterogeneous_task(seed, fraction, n_max=25)
        platform = Platform(cores, 1)
        for name, factory in _policy_factories(task, seed):
            _assert_identical(task, platform, factory)

    @settings(max_examples=25, deadline=None)
    @given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
    def test_all_policies_match_on_transformed_tasks(self, seed, fraction, cores):
        # The transformed task carries the zero-WCET v_sync, exercising the
        # instant-node cascade on both paths.
        task = transform(make_random_heterogeneous_task(seed, fraction, n_max=25)).task
        platform = Platform(cores, 1)
        for name, factory in _policy_factories(task, seed):
            _assert_identical(task, platform, factory)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=_SEEDS,
        fraction=_FRACTIONS,
        cores=_CORES,
        accelerators=st.sampled_from([1, 2, 3, 4]),
    )
    def test_multi_offload_assignments_match(self, seed, fraction, cores, accelerators):
        # Several offloaded regions spread over several devices (the
        # extensions' usage pattern): an explicit node -> device mapping.
        task = make_random_heterogeneous_task(seed, fraction, n_max=25)
        nodes = task.graph.nodes()
        assignment = {
            node: rank % accelerators for rank, node in enumerate(nodes[::3])
        }
        platform = Platform(cores, accelerators)
        for name, factory in _policy_factories(task, seed):
            _assert_identical(task, platform, factory, assignment=assignment)

    @settings(max_examples=25, deadline=None)
    @given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
    def test_offload_disabled_matches(self, seed, fraction, cores):
        task = make_random_heterogeneous_task(seed, fraction, n_max=25)
        platform = Platform(cores, 1)
        for name, factory in _policy_factories(task, seed):
            _assert_identical(task, platform, factory, offload_enabled=False)

    @settings(max_examples=20, deadline=None)
    @given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
    def test_makespan_shortcut_equals_trace_makespan(self, seed, fraction, cores):
        # simulate_makespan is served by the dense path; the public contract
        # is equality with the trace engine.
        task = make_random_heterogeneous_task(seed, fraction, n_max=25)
        assert simulate_makespan(task, cores) == simulate(task, cores).makespan()

    def test_instant_only_and_single_node_tasks(self):
        instant = DagTask.from_wcets({"a": 0, "b": 0}, [("a", "b")])
        assert simulate_makespan_dense(instant, 2) == simulate(instant, 2).makespan()
        assert simulate_makespan_dense(instant, 2) == 0.0
        single = DagTask.from_wcets({"a": 3}, [])
        assert simulate_makespan_dense(single, 1) == 3.0

    def test_empty_graph(self):
        empty = DagTask(graph=DirectedAcyclicGraph())
        assert simulate_makespan_dense(empty, 2) == 0.0

    def test_cyclic_graph_rejected(self):
        task = DagTask.from_wcets({"a": 1, "b": 1}, [("a", "b")])
        task.graph.add_edge("b", "a")
        with pytest.raises(Exception):
            simulate_makespan_dense(task, 2)

    def test_worked_examples(self):
        assert simulate_makespan_dense(figure1_task(), 2) == 12
        transformed = transform(figure1_task()).task
        assert simulate_makespan_dense(transformed, 2) == 10
        task = figure3_task()
        assert simulate_makespan_dense(task, 64) == task.critical_path_length


class TestSimulateMany:
    def _tasks(self, count=5):
        tasks = [make_random_heterogeneous_task(seed, 0.2, n_max=20) for seed in range(count)]
        return tasks + [transform(task).task for task in tasks]

    def test_matches_reference_engine_per_cell(self):
        tasks = self._tasks()
        platforms = [Platform(2, 1), Platform(4, 1)]
        makespans = simulate_many(tasks, platforms, BreadthFirstPolicy())
        assert makespans.shape == (len(tasks), 2, 1)
        for t, task in enumerate(tasks):
            for p, platform in enumerate(platforms):
                reference = simulate(task, platform, BreadthFirstPolicy()).makespan()
                assert makespans[t, p, 0] == reference

    def test_serial_vs_jobs_bit_identical(self):
        tasks = self._tasks()
        serial = simulate_many(tasks, [2, 8], RandomPolicy(3), root_seed=11, chunk_size=3)
        parallel = simulate_many(tasks, [2, 8], RandomPolicy(3), root_seed=11, chunk_size=3, jobs=2)
        assert np.array_equal(serial, parallel)

    def test_multiple_policies_and_scalar_platform(self):
        tasks = self._tasks(count=3)
        policies = [BreadthFirstPolicy(), policy_by_name("critical-path-first")]
        makespans = simulate_many(tasks, 2, policies)
        assert makespans.shape == (len(tasks), 1, 2)
        for t, task in enumerate(tasks):
            for q, name in enumerate(("breadth-first", "critical-path-first")):
                assert makespans[t, 0, q] == simulate(
                    task, 2, policy_by_name(name)
                ).makespan()

    def test_traces_mode_matches_makespans(self):
        tasks = self._tasks(count=3)
        makespans = simulate_many(tasks, [2], BreadthFirstPolicy())
        traces = simulate_many(tasks, [2], BreadthFirstPolicy(), makespans_only=False)
        for t in range(len(tasks)):
            trace = traces[t][0][0]
            trace.validate()
            assert trace.makespan() == makespans[t, 0, 0]

    def test_offload_disabled_forwarded(self):
        tasks = self._tasks(count=2)
        makespans = simulate_many(tasks, [2], offload_enabled=False)
        for t, task in enumerate(tasks):
            assert makespans[t, 0, 0] == simulate(
                task, 2, offload_enabled=False
            ).makespan()

    def test_empty_tasks_and_bad_arguments(self):
        assert simulate_many([], [2]).shape == (0, 1, 1)
        with pytest.raises(ValueError):
            simulate_many(self._tasks(count=1), [2], chunk_size=0)
        with pytest.raises(ValueError):
            simulate_many(self._tasks(count=1), [])
        with pytest.raises(ValueError):
            simulate_many(self._tasks(count=1), [2], [])


class TestCompiledTask:
    def test_view_contents(self):
        task = figure1_task()
        compiled = task.compiled()
        assert compiled.nodes == task.graph.nodes()
        assert compiled.node_count == task.node_count
        assert compiled.wcet_list == [task.graph.wcet(node) for node in compiled.nodes]
        assert list(compiled.instant) == [w == 0 for w in compiled.wcet_list]
        assert compiled.in_degree == [
            task.graph.in_degree(node) for node in compiled.nodes
        ]
        for i, node in enumerate(compiled.nodes):
            successors = {compiled.nodes[s] for s in compiled.successors_of(i)}
            assert successors == task.graph.successors(node)
            predecessors = {compiled.nodes[p] for p in compiled.predecessors_of(i)}
            assert predecessors == task.graph.predecessors(node)
        assert [compiled.nodes[i] for i in compiled.topo] == task.graph.topological_order()

    def test_cached_on_generation_stamp(self):
        task = figure1_task()
        first = task.compiled()
        assert task.compiled() is first  # unmutated: cache hit
        task.graph.set_wcet("v1", 9)
        second = task.compiled()
        assert second is not first  # weights changed: recompiled
        assert second.wcet_list[second.index["v1"]] == 9.0
        # The structural arrays survive the re-weighting (kernel shared).
        assert second.succ_idx is first.succ_idx

    def test_pickle_round_trip(self):
        compiled = figure1_task().compiled()
        clone = pickle.loads(pickle.dumps(compiled))
        assert isinstance(clone, CompiledTask)
        assert clone.nodes == compiled.nodes
        assert clone.index == compiled.index
        assert clone.wcet_list == compiled.wcet_list
        assert clone.topo == compiled.topo
        assert clone.in_degree == compiled.in_degree
        assert clone.generation == compiled.generation

    def test_compile_task_accepts_task_or_graph(self):
        task = figure1_task()
        assert compile_task(task) is compile_task(task.graph)


class TestDenseProtocolGuards:
    def test_subclass_overriding_only_priority_is_honoured(self):
        # A subclass of a dense-native policy that overrides only the
        # object-keyed priority() must not be served the parent's stale
        # dense implementation: both public entry points must honour the
        # override and agree.
        class ReversedShortestFirst(ShortestFirstPolicy):
            def priority(self, node, ready_time, arrival_index):
                return (-self._wcet.get(node, 0.0), arrival_index)

        assert not policy_supports_dense(ReversedShortestFirst())
        task = make_random_heterogeneous_task(7, 0.3, n_max=20)
        via_trace = simulate(task, 2, ReversedShortestFirst()).makespan()
        via_dense = simulate_makespan_dense(task, 2, ReversedShortestFirst())
        assert via_dense == via_trace
        # The override genuinely behaves like longest-first.
        assert via_dense == simulate(task, 2, LongestFirstPolicy()).makespan()

    def test_subclass_overriding_only_prepare_is_honoured(self):
        class DoubledTails(CriticalPathFirstPolicy):
            def prepare(self, graph):
                super().prepare(graph)
                self._bottom_level = {
                    node: 2.0 * tail for node, tail in self._bottom_level.items()
                }

        assert not policy_supports_dense(DoubledTails())
        task = make_random_heterogeneous_task(11, 0.2, n_max=20)
        assert simulate_makespan_dense(task, 2, DoubledTails()) == (
            simulate(task, 2, DoubledTails()).makespan()
        )

    def test_subclass_overriding_both_pairs_stays_dense(self):
        class Both(ShortestFirstPolicy):
            def priority(self, node, ready_time, arrival_index):
                return (-self._wcet.get(node, 0.0), arrival_index)

            def dense_priority(self, index, ready_time, arrival_index):
                return (-self._dense_wcet[index], arrival_index)

        assert policy_supports_dense(Both())
        task = make_random_heterogeneous_task(13, 0.2, n_max=20)
        assert simulate_makespan_dense(task, 2, Both()) == (
            simulate(task, 2, Both()).makespan()
        )

    def test_builtins_are_dense_native_and_custom_policies_are_not(self):
        for name in _POLICY_NAMES:
            assert policy_supports_dense(policy_by_name(name)), name

        class Custom(BreadthFirstPolicy.__mro__[1]):  # SchedulingPolicy
            def priority(self, node, ready_time, arrival_index):
                return (arrival_index,)

        assert not policy_supports_dense(Custom())
        task = make_random_heterogeneous_task(17, 0.2, n_max=20)
        assert simulate_makespan_dense(task, 2, Custom()) == (
            simulate(task, 2, Custom()).makespan()
        )

    def test_prepare_dense_is_memoised_per_compiled_view(self):
        task = make_random_heterogeneous_task(19, 0.2, n_max=20)
        compiled = task.compiled()
        policy = CriticalPathFirstPolicy()
        policy.prepare_dense(compiled)
        first = policy._dense_tail
        policy.prepare_dense(compiled)
        assert policy._dense_tail is first  # same view: no recomputation
        task.graph.set_wcet(task.offloaded_node, task.offloaded_wcet + 1)
        recompiled = task.compiled()
        policy.prepare_dense(recompiled)
        assert policy._dense_tail is not first  # new view: recomputed


class TestFixedPriorityRegistration:
    def test_policy_by_name_reaches_fixed_priority(self):
        policy = policy_by_name("fixed-priority")
        assert isinstance(policy, FixedPriorityPolicy)
        assert policy.name == "fixed-priority"
        # Empty table: every node ties at +inf, arrival order decides; the
        # schedule is still legal and simulatable on both paths.
        task = figure1_task()
        assert simulate_makespan_dense(task, 2, policy_by_name("fixed-priority")) == (
            simulate(task, 2, policy_by_name("fixed-priority")).makespan()
        )
