"""Unit tests for the comparison helpers (:mod:`repro.analysis.comparison`)."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import (
    AnalysisComparison,
    compare,
    percentage_change,
    percentage_increment,
)
from repro.analysis.results import Scenario
from repro.core.examples import figure1_task
from repro.core.transformation import transform


class TestPercentageChange:
    def test_basic_values(self):
        assert percentage_change(110, 100) == pytest.approx(10.0)
        assert percentage_change(90, 100) == pytest.approx(-10.0)
        assert percentage_change(100, 100) == 0.0

    def test_zero_reference_with_zero_value(self):
        assert percentage_change(0, 0) == 0.0

    def test_zero_reference_with_nonzero_value_raises(self):
        with pytest.raises(ZeroDivisionError):
            percentage_change(5, 0)

    def test_increment_alias(self):
        assert percentage_increment(13, 8) == percentage_change(13, 8)
        assert percentage_increment(13, 8) == pytest.approx(62.5)


class TestCompare:
    def test_figure1_comparison(self):
        comparison = compare(figure1_task(), 2)
        assert isinstance(comparison, AnalysisComparison)
        assert comparison.homogeneous.bound == 13
        assert comparison.heterogeneous.bound == 12
        assert comparison.naive.bound == 11
        assert comparison.scenario is Scenario.SCENARIO_1
        assert comparison.heterogeneous_is_tighter()
        assert comparison.gain_percent() == pytest.approx(100 * (13 - 12) / 12)

    def test_compare_accepts_precomputed_transformation(self):
        task = figure1_task()
        transformed = transform(task)
        direct = compare(task, 4)
        reused = compare(task, 4, transformed)
        assert direct.heterogeneous.bound == reused.heterogeneous.bound
        assert reused.transformed is transformed

    def test_offloaded_fraction(self):
        comparison = compare(figure1_task(), 2)
        assert comparison.offloaded_fraction() == pytest.approx(4 / 18)

    def test_summary_is_flat_and_complete(self):
        summary = compare(figure1_task(), 8).summary()
        expected_keys = {
            "m",
            "n",
            "vol",
            "len",
            "C_off",
            "C_off_fraction",
            "R_hom",
            "R_het",
            "R_naive",
            "gain_percent",
            "scenario",
        }
        assert set(summary) == expected_keys
        assert summary["m"] == 8.0
        assert summary["n"] == 6.0
        assert summary["scenario"] in (1.0, 2.1, 2.2)
        assert all(isinstance(value, float) for value in summary.values())

    def test_gain_can_be_negative_for_tiny_offload(self):
        task = figure1_task().with_offloaded_wcet(1)
        comparison = compare(task, 2)
        assert not comparison.heterogeneous_is_tighter()
        assert comparison.gain_percent() < 0
