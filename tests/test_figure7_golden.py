"""Golden regression test for the small-scale Figure 7 sweep.

The expected curves are serialised in ``tests/data/figure7_golden.json``.
Figure 7 is the experiment that exercises the whole exact-makespan stack
(generation, warm-started ILP / pruned branch-and-bound via the batched
oracle layer, batched bound analysis), so a bit-identical golden curve
pins the entire pipeline: any change to draws, solver selection or float
evaluation order shows up here.

The sweep must also be bit-identical under ``--jobs``: the parallel path
only distributes deterministic evaluation.

Regenerate the golden file (after an *intentional* pipeline change) with::

    PYTHONPATH=src python tests/test_figure7_golden.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.config import ExperimentScale
from repro.experiments.figure7 import run_figure7
from repro.ilp.batch import oracle_cache_clear

GOLDEN_PATH = Path(__file__).parent / "data" / "figure7_golden.json"

#: Small but non-trivial scale: two host sizes, three fractions, enough
#: tasks for the paired design and the oracle dedup to matter.
GOLDEN_SCALE = ExperimentScale(
    dags_per_point=3,
    core_counts=(2,),
    fractions=[0.05, 0.3],
    small_task_fractions=[0.05, 0.2, 0.4],
    ilp_node_range=(3, 9),
    ilp_wcet_max=6,
    ilp_time_limit=None,
    seed=2018,
)


def _run(jobs=None) -> dict:
    oracle_cache_clear()  # the golden must not depend on memo state
    return run_figure7(GOLDEN_SCALE, jobs=jobs).to_dict()


class TestFigure7Golden:
    def test_matches_golden_curve(self):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert _run() == golden

    def test_bit_identical_under_jobs(self):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert _run(jobs=2) == golden


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(_run(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"golden curve written to {GOLDEN_PATH}")
    else:
        print(__doc__)
