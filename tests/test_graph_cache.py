"""Cache-invalidation tests of the dense-index graph kernel.

The graph memoises its derived metrics behind generation counters (see
``docs/performance.md``).  These tests deliberately *warm* every cache, then
mutate the graph in each possible way, and assert that all recomputed values
match a freshly rebuilt graph -- i.e. the caches can never leak stale data.
A Hypothesis property interleaves random mutations and queries to hunt for
invalidation orderings the unit tests missed.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import DirectedAcyclicGraph


def _rebuild(graph: DirectedAcyclicGraph) -> DirectedAcyclicGraph:
    """A cache-free reconstruction with the same node insertion order."""
    return DirectedAcyclicGraph.from_dict(
        {node: graph.wcet(node) for node in graph.nodes()}, graph.edges()
    )


def _snapshot(graph: DirectedAcyclicGraph) -> dict:
    """Every cached metric of the graph, via the public API."""
    nodes = graph.nodes()
    pair_sample = nodes[:8]
    return {
        "topo": graph.topological_order(),
        "volume": graph.volume(),
        "length": graph.critical_path_length(),
        "path": graph.critical_path(),
        "finish": graph.earliest_finish_times(),
        "tails": graph.longest_tail_lengths(),
        "closure": graph.transitive_closure(),
        "descendants": {node: graph.descendants(node) for node in nodes},
        "ancestors": {node: graph.ancestors(node) for node in nodes},
        "parallel": {
            (a, b): graph.are_parallel(a, b)
            for a in pair_sample
            for b in pair_sample
        },
        "transitive": graph.transitive_edges(),
    }


def _warm(graph: DirectedAcyclicGraph) -> dict:
    """Read every cached metric (filling the caches) and return the values."""
    return _snapshot(graph)


def _assert_matches_fresh(graph: DirectedAcyclicGraph) -> None:
    assert _snapshot(graph) == _snapshot(_rebuild(graph))


@pytest.fixture
def warm_diamond() -> DirectedAcyclicGraph:
    """A diamond DAG with every cache already populated."""
    graph = DirectedAcyclicGraph.from_dict(
        {"a": 1, "b": 2, "c": 5, "d": 3},
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
    )
    _warm(graph)
    return graph


class TestInvalidationAfterEveryMutation:
    def test_add_node_invalidates(self, warm_diamond):
        warm_diamond.add_node("e", 7)
        warm_diamond.add_edge("d", "e")
        _assert_matches_fresh(warm_diamond)

    def test_remove_node_invalidates(self, warm_diamond):
        warm_diamond.remove_node("c")
        _assert_matches_fresh(warm_diamond)

    def test_add_edge_invalidates(self, warm_diamond):
        warm_diamond.add_edge("b", "c")
        _assert_matches_fresh(warm_diamond)

    def test_remove_edge_invalidates(self, warm_diamond):
        warm_diamond.remove_edge("a", "c")
        _assert_matches_fresh(warm_diamond)

    def test_set_wcet_invalidates_weighted_metrics(self, warm_diamond):
        before = _snapshot(warm_diamond)
        warm_diamond.set_wcet("b", 50)
        after = _snapshot(warm_diamond)
        assert after["volume"] == before["volume"] + 48
        assert after["length"] == 1 + 50 + 3
        assert after["path"] == ["a", "b", "d"]
        _assert_matches_fresh(warm_diamond)

    def test_set_wcet_preserves_structural_caches(self, warm_diamond):
        structure_before = warm_diamond.cache_generation[0]
        warm_diamond.set_wcet("b", 50)
        warm_diamond.descendants("a")
        assert warm_diamond.cache_generation[0] == structure_before

    def test_mutation_after_reading_every_metric_chain(self, warm_diamond):
        # The full chain of the issue: read everything, mutate each way in
        # turn, re-reading (and re-warming) between mutations.
        warm_diamond.set_wcet("c", 9)
        _assert_matches_fresh(warm_diamond)
        warm_diamond.add_node("e", 4)
        _assert_matches_fresh(warm_diamond)
        warm_diamond.add_edge("d", "e")
        _assert_matches_fresh(warm_diamond)
        warm_diamond.remove_edge("a", "b")
        _assert_matches_fresh(warm_diamond)
        warm_diamond.remove_node("b")
        _assert_matches_fresh(warm_diamond)


class TestCacheHygiene:
    def test_returned_containers_are_copies(self, warm_diamond):
        warm_diamond.topological_order().append("junk")
        warm_diamond.earliest_finish_times()["junk"] = -1
        warm_diamond.longest_tail_lengths()["junk"] = -1
        warm_diamond.critical_path().append("junk")
        warm_diamond.transitive_closure()["a"].add("junk")
        warm_diamond.descendants("a").add("junk")
        _assert_matches_fresh(warm_diamond)

    def test_copy_shares_results_but_diverges_after_mutation(self, warm_diamond):
        original = _snapshot(warm_diamond)
        clone = warm_diamond.copy()
        assert _snapshot(clone) == original
        clone.set_wcet("c", 99)
        clone.add_edge("b", "c")
        _assert_matches_fresh(clone)
        # The original is untouched by the clone's mutations.
        assert _snapshot(warm_diamond) == original

    def test_pickle_round_trip_drops_caches_but_not_results(self, warm_diamond):
        restored = pickle.loads(pickle.dumps(warm_diamond))
        assert restored == warm_diamond
        assert _snapshot(restored) == _snapshot(warm_diamond)
        restored.add_edge("b", "c")
        _assert_matches_fresh(restored)

    def test_invalidate_caches_changes_nothing(self, warm_diamond):
        before = _snapshot(warm_diamond)
        warm_diamond.invalidate_caches()
        assert _snapshot(warm_diamond) == before

    def test_cycle_then_repair_is_served_correctly(self):
        graph = DirectedAcyclicGraph.from_dict(
            {"a": 1, "b": 2, "c": 3}, [("a", "b"), ("b", "c")]
        )
        _warm(graph)
        graph.add_edge("c", "a")  # now cyclic
        assert not graph.is_acyclic()
        # BFS fallback on a cyclic graph: "a" reaches itself around the cycle.
        assert graph.descendants("a") == {"a", "b", "c"}
        graph.remove_edge("c", "a")  # acyclic again
        _assert_matches_fresh(graph)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_interleaved_mutations_and_queries_match_a_fresh_graph(data):
    """Random mutation/query interleavings never observe stale caches.

    Edges are only ever added from an earlier-inserted node to a later one,
    which keeps the graph acyclic by construction.
    """
    graph = DirectedAcyclicGraph()
    created = 0
    steps = data.draw(st.integers(min_value=1, max_value=25), label="steps")
    for _ in range(steps):
        nodes = graph.nodes()
        operation = data.draw(
            st.sampled_from(
                ["add_node", "add_edge", "remove_edge", "remove_node", "set_wcet", "check"]
            ),
            label="operation",
        )
        if operation == "add_node" or not nodes:
            graph.add_node(f"n{created}", data.draw(st.integers(0, 9), label="wcet"))
            created += 1
        elif operation == "add_edge" and len(nodes) >= 2:
            i = data.draw(st.integers(0, len(nodes) - 2), label="src")
            j = data.draw(st.integers(i + 1, len(nodes) - 1), label="dst")
            if not graph.has_edge(nodes[i], nodes[j]):
                graph.add_edge(nodes[i], nodes[j])
        elif operation == "remove_edge" and graph.edge_count:
            edges = graph.edges()
            index = data.draw(st.integers(0, len(edges) - 1), label="edge")
            graph.remove_edge(*edges[index])
        elif operation == "remove_node":
            index = data.draw(st.integers(0, len(nodes) - 1), label="node")
            graph.remove_node(nodes[index])
        elif operation == "set_wcet":
            index = data.draw(st.integers(0, len(nodes) - 1), label="node")
            graph.set_wcet(nodes[index], data.draw(st.integers(0, 9), label="wcet"))
        else:
            _assert_matches_fresh(graph)
        # Keep the caches warm between mutations so every mutation really
        # does hit a populated cache.
        graph.volume()
        graph.critical_path_length()
        if graph.nodes():
            graph.descendants(graph.nodes()[0])
    _assert_matches_fresh(graph)
