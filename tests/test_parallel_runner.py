"""Serial/parallel equivalence of the experiment runner and batched analysis.

The acceptance contract of the parallel layer is strict: ``jobs=N`` must
produce *bit-identical* results to the serial path, for every figure driver
and for the batched analysis.  These tests run each driver both ways at a
tiny scale and compare the full result documents.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyse, analyse_many
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import run_all, run_experiment
from repro.generator.config import OffloadConfig
from repro.generator.presets import SMALL_TASKS
from repro.generator.sweep import offload_fraction_sweep
from repro.parallel import parallel_map, resolve_jobs, spawn_seeds

#: Small enough that running every figure twice stays in the seconds range.
TINY = ExperimentScale(
    dags_per_point=3,
    core_counts=(2, 8),
    fractions=[0.05, 0.30],
    small_task_fractions=[0.20],
    ilp_node_range=(3, 8),
    ilp_wcet_max=5,
    ilp_time_limit=10.0,
    seed=11,
)


def _double(value: int) -> int:
    """Module-level worker so that it is picklable by the process pool."""
    return 2 * value


def _tasks(count: int = 6):
    points = offload_fraction_sweep(
        [0.2], count, SMALL_TASKS, OffloadConfig(), rng=3, paired=True
    )
    return points[0].tasks


class TestParallelHelpers:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(-1) >= 1

    def test_parallel_map_preserves_order_serially_and_in_processes(self):
        items = list(range(20))
        expected = [2 * value for value in items]
        assert parallel_map(_double, items) == expected
        assert parallel_map(_double, items, jobs=2) == expected

    def test_spawn_seeds_deterministic_and_distinct(self):
        first = spawn_seeds(2018, 8)
        second = spawn_seeds(2018, 8)
        assert first == second
        assert len(set(first)) == len(first)
        assert spawn_seeds(2019, 8) != first
        with pytest.raises(ValueError):
            spawn_seeds(2018, -1)


class TestRunnerJobs:
    @pytest.mark.parametrize("name", ["figure6", "figure7", "figure8", "figure9"])
    def test_figures_bit_identical_serial_vs_parallel(self, name):
        serial = run_experiment(name, TINY)
        parallel = run_experiment(name, TINY, jobs=2)
        assert serial.identical_to(parallel)
        assert serial.to_dict() == parallel.to_dict()

    def test_run_all_forwards_jobs(self):
        results = run_all(TINY, names=["worked-example", "figure8"], jobs=2)
        assert set(results) == {"worked-example", "figure8"}
        reference = run_all(TINY, names=["worked-example", "figure8"])
        for name, result in results.items():
            assert result.identical_to(reference[name])

    def test_jobs_ignored_by_unsupporting_experiments(self):
        # The worked example takes no scale or jobs; forwarding must not blow up.
        result = run_experiment("worked-example", TINY, jobs=2)
        assert result.name == "worked-example"


class TestAnalyseMany:
    def test_matches_per_task_analyse(self):
        tasks = _tasks()
        batch = analyse_many(tasks, cores=(2, 4))
        assert len(batch) == len(tasks)
        for analysis, task in zip(batch, tasks):
            assert analysis.task is task
            assert analysis.transformed is not None
            for cores in (2, 4):
                reference = analyse(task, cores)
                assert set(analysis.results[cores]) == set(reference)
                for method, result in reference.items():
                    assert analysis.results[cores][method].bound == result.bound
                    assert analysis.results[cores][method].scenario == result.scenario

    def test_parallel_bit_identical(self):
        tasks = _tasks()
        serial = analyse_many(tasks, cores=(2, 8))
        parallel = analyse_many(tasks, cores=(2, 8), jobs=2)
        for a, b in zip(serial, parallel):
            for cores in (2, 8):
                for method in a.results[cores]:
                    assert a.results[cores][method].bound == b.results[cores][method].bound

    def test_int_cores_and_helpers(self):
        tasks = _tasks(count=2)
        batch = analyse_many(tasks, cores=2, include_naive=False)
        assert batch[0].methods() == ["hom", "het"]
        assert batch[0].bound(2, "het") == batch[0].results[2]["het"].bound

    def test_homogeneous_tasks_get_only_hom(self):
        tasks = [task.as_homogeneous() for task in _tasks(count=2)]
        batch = analyse_many(tasks, cores=2)
        assert batch[0].transformed is None
        assert batch[0].methods() == ["hom"]

    def test_empty_cores_rejected(self):
        with pytest.raises(ValueError):
            analyse_many(_tasks(count=1), cores=())
