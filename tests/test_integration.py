"""End-to-end integration tests exercising the full analysis pipeline.

These tests chain generation, transformation, analysis, simulation and the
optimal-makespan oracle and assert the ordering every component must respect:

    optimal makespan  <=  simulated makespan  <=  response-time bound

as well as cross-cutting behaviours such as serialisation of generated tasks
and the schedulability layer operating on top of all of it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comparison import compare
from repro.analysis.heterogeneous import response_time as heterogeneous_response_time
from repro.analysis.homogeneous import response_time as homogeneous_response_time
from repro.analysis.schedulability import AnalysisKind, is_schedulable, minimum_cores
from repro.core.transformation import transform
from repro.core.validation import validate_task
from repro.generator.config import GeneratorConfig, OffloadConfig
from repro.generator.offload import make_heterogeneous
from repro.generator.random_dag import DagStructureGenerator
from repro.ilp.makespan import minimum_makespan
from repro.io.json_io import task_from_json, task_to_json
from repro.simulation.engine import simulate
from repro.simulation.platform import Platform
from repro.simulation.schedulers import BreadthFirstPolicy, CriticalPathFirstPolicy

SMALL_INT_CONFIG = GeneratorConfig(
    p_par=0.6, n_par=4, max_depth=3, n_min=4, n_max=11, c_min=1, c_max=6
)


def generate_small_tasks(count: int, fraction: float, seed: int):
    rng = np.random.default_rng(seed)
    generator = DagStructureGenerator(SMALL_INT_CONFIG, rng)
    tasks = []
    for index in range(count):
        task = generator.generate_task(name=f"tau_{index}")
        task = make_heterogeneous(task, OffloadConfig(), rng, target_fraction=fraction)
        tasks.append(task.with_offloaded_wcet(max(1.0, round(task.offloaded_wcet))))
    return tasks


class TestOrderingChain:
    @pytest.mark.parametrize("cores", [2, 4])
    @pytest.mark.parametrize("fraction", [0.1, 0.4])
    def test_optimal_le_simulated_le_bounds(self, cores, fraction):
        for task in generate_small_tasks(4, fraction, seed=int(100 * fraction) + cores):
            assert validate_task(task).is_valid
            transformed = transform(task)

            optimal = minimum_makespan(task, cores).makespan
            simulated_original = simulate(task, Platform(cores, 1)).makespan()
            simulated_transformed = simulate(
                transformed.task, Platform(cores, 1)
            ).makespan()
            r_hom = homogeneous_response_time(task, cores).bound
            r_het = heterogeneous_response_time(transformed, cores).bound

            assert optimal <= simulated_original + 1e-9
            assert simulated_original <= r_hom + 1e-9
            assert simulated_transformed <= r_het + 1e-9
            # The optimal makespan can never exceed either analytic bound.
            assert optimal <= r_hom + 1e-9
            assert optimal <= min(r_hom, r_het) + 1e-9

    def test_transformed_optimum_never_beats_original_optimum(self):
        for task in generate_small_tasks(4, 0.3, seed=11):
            original = minimum_makespan(task, 2).makespan
            constrained = minimum_makespan(transform(task).task, 2).makespan
            assert constrained >= original - 1e-9


class TestSerialisationInTheLoop:
    def test_generated_tasks_survive_json_round_trips(self):
        for task in generate_small_tasks(3, 0.25, seed=5):
            rebuilt = task_from_json(task_to_json(task))
            assert rebuilt.graph == task.graph
            comparison_a = compare(task, 4)
            comparison_b = compare(rebuilt, 4)
            assert comparison_a.heterogeneous.bound == comparison_b.heterogeneous.bound
            assert comparison_a.homogeneous.bound == comparison_b.homogeneous.bound


class TestSchedulabilityPipeline:
    def test_dimensioning_is_consistent_with_the_deadline_test(self):
        for task in generate_small_tasks(3, 0.3, seed=21):
            deadline = 1.5 * task.critical_path_length
            cores = minimum_cores(task, AnalysisKind.AUTO, deadline=deadline)
            if cores is None:
                continue
            assert is_schedulable(task, cores, deadline=deadline).schedulable
            if cores > 1:
                assert not is_schedulable(
                    task, cores - 1, deadline=deadline
                ).schedulable

    def test_simulation_validates_the_analytic_schedulability_verdict(self):
        # If the analysis says "schedulable on m cores with deadline D", then
        # a work-conserving simulation of the transformed task meets D too.
        for task in generate_small_tasks(4, 0.35, seed=33):
            deadline = 2.0 * task.critical_path_length
            verdict = is_schedulable(task, 2, deadline=deadline)
            if not verdict.schedulable:
                continue
            transformed = transform(task)
            for policy in (BreadthFirstPolicy(), CriticalPathFirstPolicy()):
                makespan = simulate(transformed.task, Platform(2, 1), policy).makespan()
                assert makespan <= deadline + 1e-9


class TestComparisonPipeline:
    def test_gain_matches_bound_ratio(self):
        for task in generate_small_tasks(3, 0.4, seed=44):
            comparison = compare(task, 2)
            expected = 100.0 * (
                comparison.homogeneous.bound - comparison.heterogeneous.bound
            ) / comparison.heterogeneous.bound
            assert comparison.gain_percent() == pytest.approx(expected)

    def test_large_offload_usually_favours_the_heterogeneous_analysis(self):
        # For small tasks the two bounds frequently tie (G_par can be tiny),
        # so count "not worse" and require a clear majority of strict wins
        # among the non-tied cases.
        tasks = generate_small_tasks(10, 0.45, seed=55)
        gains = [compare(task, 2).gain_percent() for task in tasks]
        not_worse = sum(1 for gain in gains if gain >= -1e-9)
        strict_wins = sum(1 for gain in gains if gain > 1e-9)
        assert not_worse >= 8
        assert strict_wins >= 3
