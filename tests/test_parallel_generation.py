"""Chunked parallel DAG-ensemble generation (`repro.generator.sweep`).

The chunked scheme derives one child seed per fixed-size chunk via
``repro.parallel.spawn_seeds``, so the drawn ensemble is a pure function of
``(root_seed, dags_per_point, chunk_size, configs)`` -- the worker count
must never influence a single draw.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.generator.config import OffloadConfig
from repro.generator.presets import SMALL_TASKS
from repro.generator.sweep import chunked_offload_fraction_sweep
from repro.parallel import spawn_seeds

CONFIG = replace(SMALL_TASKS, n_min=4, n_max=12, c_max=20)


def _sweep(jobs, chunk_size=4, dags=10, root_seed=321):
    return chunked_offload_fraction_sweep(
        fractions=[0.05, 0.2, 0.4],
        dags_per_point=dags,
        generator_config=CONFIG,
        offload_config=OffloadConfig(),
        root_seed=root_seed,
        jobs=jobs,
        chunk_size=chunk_size,
    )


class TestChunkedGeneration:
    def test_parallel_draws_identical_to_serial(self):
        serial = _sweep(jobs=1)
        parallel = _sweep(jobs=3)
        assert len(serial) == len(parallel) == 3
        for point_serial, point_parallel in zip(serial, parallel):
            assert point_serial.fraction == point_parallel.fraction
            assert len(point_serial.tasks) == len(point_parallel.tasks) == 10
            for task_serial, task_parallel in zip(
                point_serial.tasks, point_parallel.tasks
            ):
                assert task_serial.graph == task_parallel.graph
                assert task_serial.offloaded_node == task_parallel.offloaded_node
                assert task_serial.name == task_parallel.name

    def test_paired_design_shares_structures_across_fractions(self):
        points = _sweep(jobs=2)
        first, second = points[0], points[1]
        for task_a, task_b in zip(first.tasks, second.tasks):
            assert task_a.offloaded_node == task_b.offloaded_node
            # Same structure, only C_off re-pinned.
            assert task_a.graph.edges() == task_b.graph.edges()
            host_a = {n: task_a.graph.wcet(n) for n in task_a.host_nodes()}
            host_b = {n: task_b.graph.wcet(n) for n in task_b.host_nodes()}
            assert host_a == host_b

    def test_chunk_size_changes_draws_but_not_structure_of_result(self):
        # The chunk partition is part of the determinism contract: a
        # different chunk size is a different (still reproducible) ensemble.
        small_chunks = _sweep(jobs=1, chunk_size=2)
        large_chunks = _sweep(jobs=1, chunk_size=10)
        assert [p.fraction for p in small_chunks] == [
            p.fraction for p in large_chunks
        ]
        assert all(len(p.tasks) == 10 for p in small_chunks + large_chunks)

    def test_root_seed_changes_draws(self):
        a = _sweep(jobs=1, root_seed=1)
        b = _sweep(jobs=1, root_seed=2)
        assert any(
            task_a.graph != task_b.graph
            for task_a, task_b in zip(a[0].tasks, b[0].tasks)
        )

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            _sweep(jobs=1, chunk_size=0)

    def test_spawn_seeds_partition_is_scheduling_independent(self):
        # The child seeds only depend on (root, count).
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)
        assert spawn_seeds(7, 5)[:3] != spawn_seeds(8, 5)[:3]
