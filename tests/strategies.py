"""Shared hypothesis strategies and random-task helpers for the test-suite.

Most property tests need "an arbitrary heterogeneous DAG task that satisfies
the system model".  Rather than building graphs edge by edge inside
hypothesis (slow and rejection-heavy), the strategies draw *generator
parameters and seeds* and delegate the construction to the library's own
random generator -- whose structural guarantees (single source/sink, no
transitive edges, acyclicity) are themselves verified by dedicated unit and
property tests in ``tests/test_generator.py``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core.task import DagTask
from repro.generator.config import GeneratorConfig, OffloadConfig
from repro.generator.offload import make_heterogeneous
from repro.generator.random_dag import DagStructureGenerator

__all__ = [
    "small_task_parameters",
    "tiny_oracle_parameters",
    "host_tasks",
    "heterogeneous_tasks",
    "make_random_host_task",
    "make_random_heterogeneous_task",
    "make_tiny_integer_task",
]


def make_random_host_task(
    seed: int,
    n_max: int = 40,
    c_max: int = 20,
    p_par: float = 0.6,
    max_depth: int = 3,
    n_par: int = 4,
) -> DagTask:
    """Deterministically build one random host-only task from a seed."""
    config = GeneratorConfig(
        p_par=p_par,
        n_par=n_par,
        max_depth=max_depth,
        n_min=3,
        n_max=n_max,
        c_min=1,
        c_max=c_max,
    )
    return DagStructureGenerator(config, np.random.default_rng(seed)).generate_task()


def make_random_heterogeneous_task(
    seed: int,
    offload_fraction: float,
    n_max: int = 40,
    c_max: int = 20,
) -> DagTask:
    """Deterministically build one random heterogeneous task from a seed."""
    task = make_random_host_task(seed, n_max=n_max, c_max=c_max)
    return make_heterogeneous(
        task,
        OffloadConfig(),
        np.random.default_rng(seed + 1),
        target_fraction=offload_fraction,
    )


def make_random_integer_heterogeneous_task(
    seed: int,
    offload_fraction: float,
    n_max: int = 40,
    c_max: int = 20,
) -> DagTask:
    """Like :func:`make_random_heterogeneous_task` but with an integer C_off.

    The exact solvers (ILP, branch-and-bound) require integer WCETs; pinning
    an offload fraction generally produces a fractional ``C_off``, so it is
    rounded (and floored at 1) here.
    """
    task = make_random_heterogeneous_task(seed, offload_fraction, n_max, c_max)
    return task.with_offloaded_wcet(max(1.0, float(round(task.offloaded_wcet))))


def make_tiny_integer_task(
    seed: int,
    offload_fraction: float = 0.25,
    n_max: int = 6,
    c_max: int = 5,
) -> DagTask:
    """A tiny heterogeneous task with integer WCETs (exhaustive-oracle size).

    With ``n_max <= 8`` the generated task fits the factorial brute-force
    oracle in ``tests/exhaustive.py``; the WCET range is kept small so the
    cold (unpruned) time-indexed ILP also stays fast.
    """
    return make_random_integer_heterogeneous_task(
        seed, offload_fraction, n_max=n_max, c_max=c_max
    )


@st.composite
def tiny_oracle_parameters(draw):
    """Draw (seed, offload_fraction, cores, accelerators) for oracle tests."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    fraction = draw(st.floats(min_value=0.05, max_value=0.6, allow_nan=False))
    cores = draw(st.sampled_from([1, 2, 3]))
    accelerators = draw(st.sampled_from([0, 1]))
    return seed, fraction, cores, accelerators


@st.composite
def small_task_parameters(draw):
    """Draw (seed, offload_fraction, cores) triples for property tests."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    fraction = draw(
        st.floats(min_value=0.005, max_value=0.7, allow_nan=False, allow_infinity=False)
    )
    cores = draw(st.sampled_from([1, 2, 3, 4, 8, 16]))
    return seed, fraction, cores


@st.composite
def host_tasks(draw) -> DagTask:
    """Draw a random host-only task."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return make_random_host_task(seed)


@st.composite
def heterogeneous_tasks(draw) -> DagTask:
    """Draw a random heterogeneous task with a pinned offload fraction."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    fraction = draw(st.floats(min_value=0.01, max_value=0.6, allow_nan=False))
    return make_random_heterogeneous_task(seed, fraction)
