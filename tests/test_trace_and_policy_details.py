"""Fine-grained tests of trace metrics, policy priorities and CLI error paths.

These complement the behavioural tests in ``test_simulation.py`` with
hand-computed values on tiny, fully controlled schedules, so that a subtle
regression in the metric arithmetic (utilisation, idle-overlap accounting,
queueing delay) cannot hide behind the randomised tests.
"""

from __future__ import annotations

import pytest

from repro.core.examples import figure1_task
from repro.core.task import DagTask
from repro.simulation.engine import simulate
from repro.simulation.platform import ACCELERATOR, HOST, Platform
from repro.simulation.schedulers import (
    BreadthFirstPolicy,
    CriticalPathFirstPolicy,
    DepthFirstPolicy,
    LongestFirstPolicy,
    ShortestFirstPolicy,
)
from repro.simulation.trace import ExecutionTrace, NodeExecution


def _record(node, start, finish, kind=HOST, resource="core0", ready=None):
    return NodeExecution(
        node=node,
        start=start,
        finish=finish,
        resource_kind=kind,
        resource=resource,
        ready=start if ready is None else ready,
    )


def _fork_join_task() -> DagTask:
    """fork -> {left(4), right(2), v_off(6)} -> join, all WCETs hand-picked."""
    return DagTask.from_wcets(
        {"fork": 1, "left": 4, "right": 2, "v_off": 6, "join": 1},
        [
            ("fork", "left"),
            ("fork", "right"),
            ("fork", "v_off"),
            ("left", "join"),
            ("right", "join"),
            ("v_off", "join"),
        ],
        offloaded_node="v_off",
        name="fork-join",
    )


class TestTraceMetricArithmetic:
    def test_host_utilisation_hand_computed(self):
        task = _fork_join_task()
        trace = simulate(task, Platform(2, 1))
        # Host work = 1 + 4 + 2 + 1 = 8; makespan = 1 + 6 + 1 = 8; 2 cores.
        assert trace.makespan() == 8
        assert trace.host_utilisation() == pytest.approx(8 / (8 * 2))
        assert trace.accelerator_utilisation() == pytest.approx(6 / 8)

    def test_host_idle_while_accelerator_busy_hand_computed(self):
        task = _fork_join_task()
        trace = simulate(task, Platform(2, 1))
        # v_off runs 1 -> 7.  Host busy intervals: left 1-5, right 1-3, and
        # nothing else until join at 7.  Idle core*time overlapping [1, 7]:
        # core1 idle 3-7 (4) + core0 idle 5-7 (2) = 6.
        assert trace.host_idle_while_accelerator_busy() == pytest.approx(6)

    def test_idle_overlap_is_zero_without_accelerator_work(self):
        task = _fork_join_task().as_homogeneous()
        trace = simulate(task, Platform(2, 1))
        assert trace.host_idle_while_accelerator_busy() == 0.0

    def test_manual_trace_metrics(self):
        task = DagTask.from_wcets({"a": 2, "b": 2}, [("a", "b")], offloaded_node=None)
        trace = ExecutionTrace(
            task=task,
            platform=Platform(1, 0),
            executions=[
                _record("a", 0, 2),
                _record("b", 2, 4, ready=2),
            ],
        )
        trace.validate()
        assert trace.makespan() == 4
        assert trace.start_time() == 0
        assert trace.busy_time(HOST) == 4
        assert trace.busy_time(ACCELERATOR) == 0
        assert trace.host_utilisation() == pytest.approx(1.0)
        assert trace.accelerator_utilisation() == 0.0

    def test_as_rows_is_sorted_by_start(self):
        trace = simulate(_fork_join_task(), Platform(2, 1))
        rows = trace.as_rows()
        starts = [row["start"] for row in rows]
        assert starts == sorted(starts)
        assert rows[0]["node"] == "fork"

    def test_queueing_delay_hand_computed(self):
        # Single host core: 'right' becomes ready at 1 but must wait for
        # 'left' (scheduled first by creation order) to finish at 5.
        trace = simulate(_fork_join_task(), Platform(1, 1))
        right = trace.execution_of("right")
        assert right.ready == 1
        assert right.queueing_delay == right.start - 1
        assert right.queueing_delay > 0


class TestPolicyPriorityOrders:
    def test_breadth_first_orders_by_ready_time_then_creation(self):
        policy = BreadthFirstPolicy()
        policy.prepare(figure1_task().graph)
        early = policy.priority("v3", ready_time=1.0, arrival_index=5)
        later = policy.priority("v2", ready_time=2.0, arrival_index=6)
        assert early < later  # earlier ready time wins despite creation order
        first_created = policy.priority("v2", ready_time=1.0, arrival_index=7)
        assert first_created < early  # same ready time: creation order wins

    def test_depth_first_prefers_most_recent_arrival(self):
        policy = DepthFirstPolicy()
        older = policy.priority("x", 0.0, arrival_index=1)
        newer = policy.priority("y", 5.0, arrival_index=2)
        assert newer < older

    def test_critical_path_first_prefers_longer_tail(self):
        graph = figure1_task().graph
        policy = CriticalPathFirstPolicy()
        policy.prepare(graph)
        # v3 (tail 7) must precede v4 (tail 7) only via the tie-break, but
        # both must precede v2 (tail 5).
        assert policy.priority("v3", 0, 1) < policy.priority("v2", 0, 2)
        assert policy.priority("v4", 0, 1) < policy.priority("v2", 0, 2)

    def test_wcet_based_policies_are_mirror_images(self):
        graph = figure1_task().graph
        shortest = ShortestFirstPolicy()
        longest = LongestFirstPolicy()
        shortest.prepare(graph)
        longest.prepare(graph)
        assert shortest.priority("v1", 0, 1) < shortest.priority("v3", 0, 2)
        assert longest.priority("v3", 0, 1) < longest.priority("v1", 0, 2)


class TestCliErrorPaths:
    def test_unknown_policy_is_reported_cleanly(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io.json_io import save_task

        path = save_task(figure1_task(), tmp_path / "t.json")
        exit_code = main(["simulate", str(path), "--policy", "no-such-policy"])
        assert exit_code == 1
        assert "unknown policy" in capsys.readouterr().err

    def test_unknown_preset_is_reported_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        exit_code = main(
            ["generate", "-o", str(tmp_path), "--preset", "no-such-preset"]
        )
        assert exit_code == 1
        assert "unknown preset" in capsys.readouterr().err

    def test_transform_of_homogeneous_task_is_an_error(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io.json_io import save_task

        path = save_task(figure1_task().as_homogeneous(), tmp_path / "t.json")
        assert main(["transform", str(path)]) == 1
        assert "no offloaded node" in capsys.readouterr().err
