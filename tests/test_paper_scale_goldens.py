"""Slow golden regression tests for the paper-scale reference runs.

``benchmarks/run_paper_scale.py`` records the figure 6 and figure 7 runs at
the paper's sampling effort under ``benchmarks/results/paper_scale/``; the
same documents are frozen as goldens in ``tests/data/figure6_paper_golden.json``
and ``tests/data/figure7_paper_golden.json``.  These tests re-run the full
experiments and compare bit for bit -- minutes (figure 6) to hours
(figure 7's exact-makespan oracles) of compute, so they are ``slow``-marked
and skipped unless ``REPRO_SLOW_TESTS=1`` is set:

    REPRO_SLOW_TESTS=1 python -m pytest tests/test_paper_scale_goldens.py -m slow

Cheap consistency checks (the committed artefacts and the goldens must be
the same documents, with the expected shape) always run, so tier-1 still
notices a half-updated pair of files.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

_DATA = Path(__file__).parent / "data"
_RESULTS = Path(__file__).parent.parent / "benchmarks" / "results" / "paper_scale"

FIGURE6_GOLDEN = _DATA / "figure6_paper_golden.json"
FIGURE7_GOLDEN = _DATA / "figure7_paper_golden.json"
FIGURE6_UPPER_GOLDEN = _DATA / "figure6_upper_range_golden.json"
ABLATION_GOLDEN = _DATA / "scheduler_ablation_paper_golden.json"

_slow = pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW_TESTS"),
    reason="paper-scale regression run; set REPRO_SLOW_TESTS=1 to enable",
)


def _load(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


class TestCommittedArtefactsConsistent:
    """Fast tier-1 checks over the committed documents."""

    def test_figure6_golden_matches_recorded_run(self):
        assert _load(FIGURE6_GOLDEN) == _load(_RESULTS / "figure6.json")

    def test_figure7_golden_matches_recorded_run(self):
        assert _load(FIGURE7_GOLDEN) == _load(_RESULTS / "figure7.json")

    def test_figure6_has_paper_shape(self):
        document = _load(FIGURE6_GOLDEN)
        assert document["metadata"]["dags_per_point"] == 100
        labels = [series["label"] for series in document["series"]]
        assert labels == ["m=2", "m=4", "m=8", "m=16"]
        for series in document["series"]:
            assert len(series["x"]) == 15  # the paper's fraction grid

    def test_figure7_has_paper_wcet_range(self):
        document = _load(FIGURE7_GOLDEN)
        assert document["metadata"]["wcet_max"] == 100
        # figure7_paper_scale(): 25 DAGs/point (documented substitution).
        assert document["metadata"]["dags_per_point"] == 25
        labels = {series["label"] for series in document["series"]}
        assert labels == {"R_hom m=2", "R_het m=2", "R_hom m=8", "R_het m=8"}

    def test_figure6_upper_golden_matches_recorded_run(self):
        assert _load(FIGURE6_UPPER_GOLDEN) == _load(
            _RESULTS / "figure6_upper_range.json"
        )

    def test_ablation_golden_matches_recorded_run(self):
        assert _load(ABLATION_GOLDEN) == _load(
            _RESULTS / "scheduler_ablation_paper.json"
        )

    def test_figure6_upper_has_paper_shape(self):
        document = _load(FIGURE6_UPPER_GOLDEN)
        assert document["metadata"]["generator"] == "large tasks, n in [250, 400]"
        assert document["metadata"]["dags_per_point"] == 100
        labels = [series["label"] for series in document["series"]]
        assert labels == ["m=2", "m=4", "m=8", "m=16"]
        for series in document["series"]:
            assert len(series["x"]) == 15  # the paper's fraction grid

    def test_ablation_has_all_seven_policies(self):
        from repro.experiments.ablations import ABLATION_POLICY_NAMES

        document = _load(ABLATION_GOLDEN)
        labels = [series["label"] for series in document["series"]]
        assert labels == list(ABLATION_POLICY_NAMES)
        metadata = document["metadata"]
        # 15 points x 100 DAGs x {original, transformed} x 7 policies.
        assert metadata["requests"] == 15 * 100 * 2 * 7
        assert metadata["dags_per_point"] == 100
        assert metadata["cores"] == 4
        assert metadata["served_by"] == "EvaluationService micro-batch queue"
        for series in document["series"]:
            assert len(series["x"]) == 15
            assert series["metadata"]["crossover_fraction"] is not None


@_slow
@pytest.mark.slow
class TestPaperScaleReruns:
    def test_figure6_paper_scale_reproduces_golden(self):
        from repro.experiments.config import paper_scale
        from repro.experiments.figure6 import run_figure6

        assert run_figure6(scale=paper_scale()).to_dict() == _load(FIGURE6_GOLDEN)

    def test_figure7_paper_scale_reproduces_golden(self):
        from repro.experiments.config import figure7_paper_scale
        from repro.experiments.figure7 import run_figure7
        from repro.ilp.batch import oracle_cache_clear

        oracle_cache_clear()
        document = run_figure7(scale=figure7_paper_scale()).to_dict()
        # The recorded run solved every instance optimally well inside the
        # 60 s oracle cap (0 trips -> fully deterministic curves).  On a
        # much slower machine a trip would make the rerun diverge for
        # timing reasons, not correctness -- surface that case explicitly
        # instead of as an opaque golden mismatch.
        assert document["metadata"]["non_optimal_oracle_results"] == 0, (
            "an oracle solve tripped the 60 s cap on this machine; the "
            "golden was recorded with zero trips, so the bit-for-bit "
            "comparison below would fail for timing (not correctness) "
            "reasons"
        )
        assert document == _load(FIGURE7_GOLDEN)

    def test_figure6_upper_range_reproduces_golden(self):
        from repro.experiments.config import paper_scale
        from repro.experiments.figure6 import run_figure6
        from repro.generator.presets import LARGE_TASKS_UPPER_RANGE

        result = run_figure6(
            scale=paper_scale(), generator_config=LARGE_TASKS_UPPER_RANGE
        )
        # run_paper_scale.py renames the result before publishing it.
        result.name = "figure6_upper_range"
        result.title += " (upper task-size range)"
        assert result.to_dict() == _load(FIGURE6_UPPER_GOLDEN)

    def test_scheduler_ablation_reproduces_golden(self):
        from repro.experiments.ablations import run_scheduler_ablation_service
        from repro.experiments.config import paper_scale

        result = run_scheduler_ablation_service(scale=paper_scale())
        result.name = "scheduler_ablation_paper"
        assert result.to_dict() == _load(ABLATION_GOLDEN)
