"""Unit tests for Theorem 1 (:mod:`repro.analysis.heterogeneous`).

The three execution scenarios are exercised with variants of the Figure 1
task whose ``C_off`` values are chosen so that each scenario's preconditions
hold and the expected bound can be computed by hand:

* ``C_off = 4``  (the paper's value)  -> Scenario 1,
* ``C_off = 7``                        -> Scenario 2.2,
* ``C_off = 20``                       -> Scenario 2.1,
* ``C_off = 8 = R_hom(G_par)``         -> boundary where Eqs. 3 and 4 agree.

For the Figure 1 structure and ``m = 2``: ``G_par = {v2, v3}`` with
``vol(G_par) = 10``, ``len(G_par) = 6`` and ``R_hom(G_par) = 8``;
``len(G') = 1 + 2 + max(C_off, 6) + 1``.
"""

from __future__ import annotations

import pytest

from repro.analysis.heterogeneous import (
    analyse,
    classify_scenario,
    naive_unsafe_response_time,
    response_time,
)
from repro.analysis.homogeneous import graph_response_time
from repro.analysis.homogeneous import response_time as homogeneous_response_time
from repro.analysis.results import ResponseTimeResult, Scenario
from repro.core.examples import figure1_task
from repro.core.exceptions import AnalysisError
from repro.core.task import DagTask
from repro.core.transformation import transform


def figure1_with_offload(c_off: float) -> DagTask:
    return figure1_task().with_offloaded_wcet(c_off)


class TestScenarioClassification:
    def test_scenario_1(self):
        assert classify_scenario(figure1_with_offload(4), 2) is Scenario.SCENARIO_1

    def test_scenario_2_2(self):
        assert classify_scenario(figure1_with_offload(7), 2) is Scenario.SCENARIO_2_2

    def test_scenario_2_1(self):
        assert classify_scenario(figure1_with_offload(20), 2) is Scenario.SCENARIO_2_1

    def test_boundary_counts_as_2_1(self):
        # C_off == R_hom(G_par) == 8: Equations 3 and 4 coincide; the
        # classifier reports 2.1 by convention.
        assert classify_scenario(figure1_with_offload(8), 2) is Scenario.SCENARIO_2_1

    def test_classification_depends_on_core_count(self):
        # R_hom(G_par) = 6 + 4/m: with C_off = 7 the scenario flips from 2.2
        # (m = 2, bound 8) to 2.1 (m = 4, bound 7).
        task = figure1_with_offload(7)
        assert classify_scenario(task, 2) is Scenario.SCENARIO_2_2
        assert classify_scenario(task, 4) is Scenario.SCENARIO_2_1

    def test_accepts_pre_transformed_input(self):
        transformed = transform(figure1_task())
        assert classify_scenario(transformed, 2) is Scenario.SCENARIO_1

    def test_rejects_homogeneous_task(self):
        task = DagTask.from_wcets({"a": 1, "b": 2}, [("a", "b")])
        with pytest.raises(AnalysisError):
            classify_scenario(task, 2)


class TestTheoremOneValues:
    def test_scenario_1_equation_2(self):
        # len(G') = 10, vol = 18, C_off = 4:  10 + (18 - 10 - 4)/2 = 12.
        result = response_time(figure1_with_offload(4), 2)
        assert result.scenario is Scenario.SCENARIO_1
        assert result.bound == 12

    def test_scenario_2_2_equation_4(self):
        # C_off = 7: len(G') = 11, vol = 21, len(G_par) = 6:
        # 11 - 7 + 6 + (21 - 11 - 6)/2 = 12.
        result = response_time(figure1_with_offload(7), 2)
        assert result.scenario is Scenario.SCENARIO_2_2
        assert result.bound == 12

    def test_scenario_2_1_equation_3(self):
        # C_off = 20: len(G') = 24, vol = 34, vol(G_par) = 10:
        # 24 + (34 - 24 - 10)/2 = 24.
        result = response_time(figure1_with_offload(20), 2)
        assert result.scenario is Scenario.SCENARIO_2_1
        assert result.bound == 24

    def test_boundary_equations_3_and_4_agree(self):
        task = figure1_with_offload(8)
        forced_21 = response_time(task, 2, scenario=Scenario.SCENARIO_2_1)
        forced_22 = response_time(task, 2, scenario=Scenario.SCENARIO_2_2)
        assert forced_21.bound == forced_22.bound == 12

    def test_terms_expose_gpar_quantities(self):
        result = response_time(figure1_with_offload(4), 2)
        assert result.terms["vol_Gpar"] == 10
        assert result.terms["len_Gpar"] == 6
        assert result.terms["R_hom_Gpar"] == 8
        assert result.terms["C_off"] == 4
        assert result.terms["len_G"] == 8
        assert result.terms["vol_G"] == 18

    def test_interference_terms_are_non_negative(self):
        for c_off in (1, 4, 7, 8, 12, 20, 50):
            for cores in (1, 2, 4, 8):
                result = response_time(figure1_with_offload(c_off), cores)
                assert result.interference() >= -1e-9

    def test_empty_gpar_degenerates_to_equation_3(self):
        # A pure chain with an offloaded middle node: G_par is empty and the
        # heterogeneous bound equals the homogeneous bound of the transformed
        # graph (there is nothing to overlap with the offload).
        task = DagTask.from_wcets(
            {"a": 2, "v_off": 5, "b": 3},
            [("a", "v_off"), ("v_off", "b")],
            offloaded_node="v_off",
        )
        result = response_time(task, 4)
        assert result.scenario is Scenario.SCENARIO_2_1
        assert result.bound == 10  # the chain itself; no interference at all

    def test_invalid_core_count_rejected(self):
        with pytest.raises(AnalysisError):
            response_time(figure1_task(), 0)

    def test_rejects_non_task_input(self):
        with pytest.raises(AnalysisError):
            response_time("not a task", 2)  # type: ignore[arg-type]


class TestAgainstHomogeneousBound:
    def test_het_beats_hom_for_large_offload(self):
        task = figure1_with_offload(6)
        het = response_time(task, 2).bound
        hom = homogeneous_response_time(task, 2).bound
        assert het < hom

    def test_hom_can_beat_het_for_tiny_offload(self):
        # The sync point enlarges the critical path; with a tiny C_off the
        # homogeneous bound of the *original* task is tighter -- exactly the
        # effect discussed in Sections 5.2-5.4 of the paper.
        task = figure1_with_offload(1)
        het = response_time(task, 2).bound
        hom = homogeneous_response_time(task, 2).bound
        assert hom < het

    def test_het_bound_of_transformed_never_exceeds_hom_of_transformed(self):
        for c_off in (1, 4, 7, 8, 12, 20):
            task = figure1_with_offload(c_off)
            transformed = transform(task)
            het = response_time(transformed, 2).bound
            hom_on_transformed = homogeneous_response_time(transformed.task, 2).bound
            assert het <= hom_on_transformed + 1e-9


class TestNaiveBound:
    def test_figure1_value(self):
        # 13 - 4/2 = 11, the unsafe value quoted in Section 3.2.
        result = naive_unsafe_response_time(figure1_task(), 2)
        assert result.bound == 11
        assert result.method == "naive"

    def test_requires_offloaded_node(self):
        task = DagTask.from_wcets({"a": 1, "b": 2}, [("a", "b")])
        with pytest.raises(AnalysisError):
            naive_unsafe_response_time(task, 2)

    def test_naive_is_never_larger_than_homogeneous(self):
        for c_off in (1, 4, 10):
            task = figure1_with_offload(c_off)
            naive = naive_unsafe_response_time(task, 2).bound
            hom = homogeneous_response_time(task, 2).bound
            assert naive <= hom


class TestAnalyseConvenience:
    def test_heterogeneous_task_gets_three_bounds(self):
        results = analyse(figure1_task(), 2)
        assert set(results) == {"hom", "het", "naive"}
        assert all(isinstance(value, ResponseTimeResult) for value in results.values())
        assert results["hom"].bound == 13
        assert results["het"].bound == 12
        assert results["naive"].bound == 11

    def test_homogeneous_task_gets_only_hom(self):
        task = DagTask.from_wcets({"a": 1, "b": 2}, [("a", "b")])
        results = analyse(task, 2)
        assert set(results) == {"hom"}


class TestResponseTimeResultBehaviour:
    def test_meets_deadline(self):
        result = response_time(figure1_task(), 2)
        assert result.meets_deadline(12)
        assert result.meets_deadline(None)
        assert not result.meets_deadline(11.9)

    def test_comparisons_and_float_conversion(self):
        het = response_time(figure1_task(), 2)
        hom = homogeneous_response_time(figure1_task(), 2)
        assert het < hom
        assert het <= hom
        assert het < 12.5
        assert het <= 12
        assert float(het) == 12.0

    def test_describe_mentions_method_and_scenario(self):
        text = response_time(figure1_task(), 2).describe()
        assert "het" in text
        assert "scenario-1" in text
