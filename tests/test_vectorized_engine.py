"""Bit-identity of the lockstep kernel against both scalar engines.

The vectorised lockstep kernel (:mod:`repro.simulation.vectorized`) and the
batched :func:`~repro.simulation.batch.simulate_many` fast path must
reproduce the reference trace engine's makespans *exactly* -- same floats,
not approximately -- for every registered policy family, platform shape,
device assignment and offload mode.  These properties mirror
``tests/test_dense_engine.py`` and drive all three implementations over
random DAGs from the shared strategies, comparing with ``==``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.task import DagTask
from repro.core.transformation import transform
from repro.simulation import _kernels
from repro.simulation.batch import resolve_engine, simulate_many
from repro.simulation.dense import simulate_makespan_dense
from repro.simulation.engine import simulate
from repro.simulation.platform import Platform
from repro.simulation.schedulers import (
    VECTOR_FIFO,
    VECTOR_LIFO,
    VECTOR_RANDOM,
    VECTOR_STATIC,
    BreadthFirstPolicy,
    CriticalPathFirstPolicy,
    FixedPriorityPolicy,
    RandomPolicy,
    SchedulingPolicy,
    ShortestFirstPolicy,
    policy_by_name,
    policy_vector_kind,
)
from repro.simulation.vectorized import (
    VectorCell,
    simulate_column_vectorized,
    simulate_makespan_lockstep,
    simulate_makespans_vectorized,
)

from strategies import make_random_heterogeneous_task

_SEEDS = st.integers(min_value=0, max_value=4_000)
_FRACTIONS = st.floats(min_value=0.01, max_value=0.6, allow_nan=False)
_CORES = st.sampled_from([1, 2, 3, 4])

#: Every registered policy, as factories so that each engine run gets a
#: fresh instance (RandomPolicy must replay the same stream on all paths).
_POLICY_NAMES = (
    "breadth-first",
    "depth-first",
    "critical-path-first",
    "shortest-first",
    "longest-first",
    "random",
    "fixed-priority",
)


def _policy_factories(task: DagTask, seed: int):
    for name in _POLICY_NAMES:
        yield name, lambda name=name: policy_by_name(name, rng=seed)
    # fixed-priority via the registry has an empty table; also exercise a
    # populated one (the worst-case search's usage pattern).
    yield "fixed-priority(populated)", lambda: FixedPriorityPolicy(
        {node: (seed + rank) % 5 for rank, node in enumerate(task.graph.nodes())}
    )


def _assert_identical(task, platform, factory, offload_enabled=True, assignment=None):
    reference = simulate(
        task,
        platform,
        factory(),
        offload_enabled=offload_enabled,
        device_assignment=assignment,
    ).makespan()
    dense = simulate_makespan_dense(
        task,
        platform,
        factory(),
        offload_enabled=offload_enabled,
        device_assignment=assignment,
    )
    lockstep = simulate_makespan_lockstep(
        task,
        platform,
        factory(),
        offload_enabled=offload_enabled,
        device_assignment=assignment,
    )
    assert lockstep == dense == reference


class TestLockstepBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
    def test_all_policies_match_on_heterogeneous_tasks(self, seed, fraction, cores):
        task = make_random_heterogeneous_task(seed, fraction, n_max=25)
        platform = Platform(cores, 1)
        for name, factory in _policy_factories(task, seed):
            _assert_identical(task, platform, factory)

    @settings(max_examples=20, deadline=None)
    @given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
    def test_all_policies_match_on_transformed_tasks(self, seed, fraction, cores):
        # The transformed task carries the zero-WCET v_sync, exercising the
        # instant-node cascade on every path (the vectorised wave for the
        # fifo family, the exact scalar fallback for the stamped ones).
        task = transform(make_random_heterogeneous_task(seed, fraction, n_max=25)).task
        platform = Platform(cores, 1)
        for name, factory in _policy_factories(task, seed):
            _assert_identical(task, platform, factory)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=_SEEDS,
        fraction=_FRACTIONS,
        cores=_CORES,
        accelerators=st.sampled_from([1, 2, 3, 4]),
    )
    def test_multi_offload_assignments_match(self, seed, fraction, cores, accelerators):
        # Several offloaded regions spread over several devices (the
        # extensions' usage pattern): an explicit node -> device mapping.
        task = make_random_heterogeneous_task(seed, fraction, n_max=25)
        nodes = task.graph.nodes()
        assignment = {
            node: rank % accelerators for rank, node in enumerate(nodes[::3])
        }
        platform = Platform(cores, accelerators)
        for name, factory in _policy_factories(task, seed):
            _assert_identical(task, platform, factory, assignment=assignment)

    @settings(max_examples=20, deadline=None)
    @given(seed=_SEEDS, fraction=_FRACTIONS, cores=_CORES)
    def test_offload_disabled_matches(self, seed, fraction, cores):
        task = make_random_heterogeneous_task(seed, fraction, n_max=25)
        platform = Platform(cores, 1)
        for name, factory in _policy_factories(task, seed):
            _assert_identical(task, platform, factory, offload_enabled=False)

    @settings(max_examples=15, deadline=None)
    @given(seed=_SEEDS, fraction=_FRACTIONS)
    def test_batched_cells_match_per_cell_runs(self, seed, fraction):
        # One mixed batch (original + transformed tasks, several platforms,
        # every policy family) must equal the per-cell sequential runs: the
        # kernel's per-lane results may not depend on batch composition.
        base = make_random_heterogeneous_task(seed, fraction, n_max=20)
        tasks = [base, transform(base).task]
        platforms = [Platform(1, 1), Platform(3, 1)]
        cells, references = [], []
        for name in _POLICY_NAMES:
            for task in tasks:
                for platform in platforms:
                    cells.append(
                        VectorCell(
                            task=task,
                            platform=platform,
                            policy=policy_by_name(name, rng=seed),
                        )
                    )
                    references.append(
                        simulate(
                            task, platform, policy_by_name(name, rng=seed)
                        ).makespan()
                    )
        assert list(simulate_makespans_vectorized(cells)) == references

    def test_random_policy_shared_stream_matches_cell_order(self):
        # One RandomPolicy instance serving several cells must consume its
        # stream in cell order, exactly like sequential per-cell runs.
        tasks = [make_random_heterogeneous_task(seed, 0.2, n_max=20) for seed in range(4)]
        platforms = [Platform(2, 1), Platform(4, 1)]
        reference_policy = RandomPolicy(99)
        references = [
            simulate(task, platform, reference_policy).makespan()
            for task in tasks
            for platform in platforms
        ]
        cells_policy = RandomPolicy(99)
        cells = [
            VectorCell(task=task, platform=platform, policy=cells_policy)
            for task in tasks
            for platform in platforms
        ]
        assert list(simulate_makespans_vectorized(cells)) == references

    def test_column_grid_matches_reference(self):
        tasks = [make_random_heterogeneous_task(seed, 0.3, n_max=20) for seed in range(5)]
        platforms = [Platform(2, 1), Platform(5, 1)]
        for name in ("breadth-first", "critical-path-first"):
            grid = simulate_column_vectorized(
                [(task, None) for task in tasks], platforms, policy_by_name(name)
            )
            assert grid.shape == (len(tasks), len(platforms))
            for t, task in enumerate(tasks):
                for p, platform in enumerate(platforms):
                    assert grid[t, p] == simulate(
                        task, platform, policy_by_name(name)
                    ).makespan()

    def test_near_tied_finishes_keep_fifo_order(self):
        # Float-sum divergence (0.1 + 0.2 != 0.3) produces completions that
        # differ by less than the engines' 1e-12 retire window: they retire
        # in the same step but with *different* finish times, so same-step
        # arrivals no longer tie on ready time and the kernel must fall
        # back to the full (lane, ready, index) ordering.  Chained tenth
        # WCETs generate such windows all over the schedule.
        tenths = [0.1, 0.2, 0.3]
        for cores in (1, 2, 3):
            for seed in range(6):
                rng = np.random.default_rng(seed)
                wcets = {
                    f"n{i}": float(tenths[int(rng.integers(3))]) for i in range(18)
                }
                edges = [
                    (f"n{i}", f"n{j}")
                    for i in range(18)
                    for j in range(i + 1, 18)
                    if rng.random() < 0.15
                ]
                task = DagTask.from_wcets(wcets, edges)
                reference = simulate(task, cores, BreadthFirstPolicy()).makespan()
                assert (
                    simulate_makespan_lockstep(task, cores, BreadthFirstPolicy())
                    == reference
                )
                assert (
                    simulate_makespan_dense(task, cores, BreadthFirstPolicy())
                    == reference
                )

    def test_unsupported_policy_rejected(self):
        class Custom(SchedulingPolicy):
            def priority(self, node, ready_time, arrival_index):
                return (arrival_index,)

        task = make_random_heterogeneous_task(1, 0.2, n_max=10)
        with pytest.raises(ValueError):
            simulate_makespan_lockstep(task, 2, Custom())

    def test_vector_kind_registry(self):
        assert policy_vector_kind(BreadthFirstPolicy()) == VECTOR_FIFO
        assert policy_vector_kind(policy_by_name("depth-first")) == VECTOR_LIFO
        assert policy_vector_kind(RandomPolicy(0)) == VECTOR_RANDOM
        for name in ("critical-path-first", "shortest-first", "longest-first",
                     "fixed-priority"):
            assert policy_vector_kind(policy_by_name(name)) == VECTOR_STATIC

        # Subclasses have no vector kind, even when they override nothing:
        # the kernel cannot see what a subclass might change, so anything
        # that is not literally a built-in falls back to the dense engine.
        class SubtlyDifferent(ShortestFirstPolicy):
            def priority(self, node, ready_time, arrival_index):
                return (-self._wcet.get(node, 0.0), arrival_index)

        assert policy_vector_kind(SubtlyDifferent()) is None
        # ... and simulate_many still serves it, bit-identically, through
        # the dense fallback.
        task = make_random_heterogeneous_task(3, 0.2, n_max=15)
        grid = simulate_many([task], [2], SubtlyDifferent())
        assert grid[0, 0, 0] == simulate(task, 2, SubtlyDifferent()).makespan()

    def test_static_keys_match_dense_priorities(self):
        task = make_random_heterogeneous_task(7, 0.25, n_max=20)
        compiled = task.compiled()
        for name in ("critical-path-first", "shortest-first", "longest-first"):
            policy = policy_by_name(name)
            keys = policy.vector_keys(compiled)
            policy.prepare_dense(compiled)
            for index in range(len(compiled.nodes)):
                assert keys[index] == policy.dense_priority(index, 0.0, 1)[0]


class TestSimulateManyEngines:
    def _tasks(self, count=5):
        tasks = [make_random_heterogeneous_task(seed, 0.2, n_max=20) for seed in range(count)]
        return tasks + [transform(task).task for task in tasks]

    def test_auto_equals_dense_engine(self):
        tasks = self._tasks()
        platforms = [Platform(2, 1), Platform(4, 1)]
        policies = [
            BreadthFirstPolicy(),
            policy_by_name("critical-path-first"),
            policy_by_name("depth-first"),
            RandomPolicy(5),
        ]
        auto = simulate_many(tasks, platforms, policies, root_seed=11, chunk_size=3)
        dense = simulate_many(
            tasks, platforms, policies, root_seed=11, chunk_size=3, engine="dense"
        )
        assert np.array_equal(auto, dense)

    def test_serial_vs_jobs_bit_identical(self):
        tasks = self._tasks()
        policies = [BreadthFirstPolicy(), RandomPolicy(3)]
        serial = simulate_many(tasks, [2, 8], policies, root_seed=11, chunk_size=3)
        parallel = simulate_many(
            tasks, [2, 8], policies, root_seed=11, chunk_size=3, jobs=2
        )
        assert np.array_equal(serial, parallel)

    def test_matches_reference_engine_per_cell(self):
        tasks = self._tasks(count=3)
        platforms = [Platform(2, 1), Platform(4, 1)]
        policies = [BreadthFirstPolicy(), CriticalPathFirstPolicy()]
        makespans = simulate_many(tasks, platforms, policies)
        for t, task in enumerate(tasks):
            for p, platform in enumerate(platforms):
                for q, policy in enumerate(
                    (BreadthFirstPolicy(), CriticalPathFirstPolicy())
                ):
                    assert makespans[t, p, q] == simulate(
                        task, platform, policy
                    ).makespan()

    def test_offload_disabled_and_bad_engine(self):
        tasks = self._tasks(count=2)
        auto = simulate_many(tasks, [2], offload_enabled=False)
        dense = simulate_many(tasks, [2], offload_enabled=False, engine="dense")
        assert np.array_equal(auto, dense)
        with pytest.raises(ValueError):
            simulate_many(tasks, [2], engine="warp")


#: Both lockstep-kernel backends; the compiled C backend is skipped cleanly
#: on hosts without a working C compiler (or with ``REPRO_COMPILED=0``).
_BACKENDS = [
    "numpy",
    pytest.param(
        "compiled",
        marks=pytest.mark.skipif(
            not _kernels.compiled_available(),
            reason="compiled kernel unavailable: "
            f"{_kernels.compiled_unavailable_reason()}",
        ),
    ),
]

#: The simulate_many engine name serving each backend explicitly.
_BACKEND_ENGINE = {"numpy": "lockstep", "compiled": "compiled"}


@pytest.mark.parametrize("backend", _BACKENDS)
class TestBackendBitIdentity:
    """The PR-8 backend axis: every backend equals the scalar engines."""

    def _assert_backend_identical(
        self, task, platform, factory, backend, offload_enabled=True, assignment=None
    ):
        dense = simulate_makespan_dense(
            task,
            platform,
            factory(),
            offload_enabled=offload_enabled,
            device_assignment=assignment,
        )
        lockstep = simulate_makespan_lockstep(
            task,
            platform,
            factory(),
            offload_enabled=offload_enabled,
            device_assignment=assignment,
            backend=backend,
        )
        assert lockstep == dense

    def test_all_policies_on_original_and_transformed(self, backend):
        for seed in range(8):
            base = make_random_heterogeneous_task(seed, 0.25, n_max=22)
            for task in (base, transform(base).task):
                for cores in (1, 3):
                    platform = Platform(cores, 1)
                    for name, factory in _policy_factories(task, seed):
                        self._assert_backend_identical(
                            task, platform, factory, backend
                        )

    def test_multi_device_assignments(self, backend):
        for seed in range(6):
            task = make_random_heterogeneous_task(seed, 0.3, n_max=22)
            nodes = task.graph.nodes()
            for accelerators in (2, 3):
                assignment = {
                    node: rank % accelerators
                    for rank, node in enumerate(nodes[::3])
                }
                platform = Platform(2, accelerators)
                for name, factory in _policy_factories(task, seed):
                    for offload_enabled in (True, False):
                        self._assert_backend_identical(
                            task,
                            platform,
                            factory,
                            backend,
                            offload_enabled=offload_enabled,
                            assignment=assignment,
                        )

    def test_non_uniform_steps(self, backend):
        # Tenth-sum float divergence: completions inside one 1e-12 retire
        # window with *different* finish floats, on every policy family.
        tenths = [0.1, 0.2, 0.3]
        for seed in range(4):
            rng = np.random.default_rng(seed)
            wcets = {
                f"n{i}": float(tenths[int(rng.integers(3))]) for i in range(16)
            }
            edges = [
                (f"n{i}", f"n{j}")
                for i in range(16)
                for j in range(i + 1, 16)
                if rng.random() < 0.15
            ]
            task = DagTask.from_wcets(wcets, edges)
            for cores in (1, 2):
                for name, factory in _policy_factories(task, seed):
                    self._assert_backend_identical(
                        task, Platform(cores, 1), factory, backend
                    )

    def test_stamped_ties_near_equal_keys(self, backend):
        # Equal static keys must fall to the arrival tie-breaker: uniform
        # WCETs tie every shortest/longest key, and tenth-sum ready times
        # land within 1e-12 retire windows -- the packed single-float
        # select must still replay the scalar (key, arrival) heap order.
        for seed in range(6):
            rng = np.random.default_rng(seed + 100)
            wcets = {f"n{i}": 0.1 for i in range(14)}
            edges = [
                (f"n{i}", f"n{j}")
                for i in range(14)
                for j in range(i + 1, 14)
                if rng.random() < 0.2
            ]
            task = DagTask.from_wcets(wcets, edges)
            for name in ("shortest-first", "longest-first", "fixed-priority"):
                for cores in (1, 2, 3):
                    self._assert_backend_identical(
                        task,
                        Platform(cores, 1),
                        lambda name=name: policy_by_name(name),
                        backend,
                    )

    def test_batch_composition_independent(self, backend):
        # One mixed batch equals per-cell runs on either backend.
        base = make_random_heterogeneous_task(11, 0.25, n_max=20)
        tasks = [base, transform(base).task]
        platforms = [Platform(1, 1), Platform(3, 1)]
        cells, references = [], []
        for name in _POLICY_NAMES:
            for task in tasks:
                for platform in platforms:
                    cells.append(
                        VectorCell(
                            task=task,
                            platform=platform,
                            policy=policy_by_name(name, rng=11),
                        )
                    )
                    references.append(
                        simulate_makespan_dense(
                            task, platform, policy_by_name(name, rng=11)
                        )
                    )
        assert (
            list(simulate_makespans_vectorized(cells, backend=backend))
            == references
        )

    def test_simulate_many_engine_and_jobs2(self, backend):
        tasks = [
            make_random_heterogeneous_task(seed, 0.2, n_max=18)
            for seed in range(6)
        ]
        tasks += [transform(task).task for task in tasks[:3]]
        policies = [
            BreadthFirstPolicy(),
            policy_by_name("critical-path-first"),
            RandomPolicy(5),
        ]
        engine = _BACKEND_ENGINE[backend]
        dense = simulate_many(
            tasks, [2, 4], policies, root_seed=7, chunk_size=4, engine="dense"
        )
        serial = simulate_many(
            tasks, [2, 4], policies, root_seed=7, chunk_size=4, engine=engine
        )
        parallel = simulate_many(
            tasks,
            [2, 4],
            policies,
            root_seed=7,
            chunk_size=4,
            engine=engine,
            jobs=2,
        )
        assert np.array_equal(serial, dense)
        assert np.array_equal(parallel, dense)


class TestCompiledBackendPlumbing:
    def test_resolve_engine_names(self):
        assert resolve_engine("dense") == "dense"
        assert resolve_engine("lockstep") == "lockstep"
        auto = resolve_engine("auto")
        if _kernels.compiled_available():
            assert auto == "compiled"
        else:
            assert auto == "lockstep"
        with pytest.raises(ValueError):
            resolve_engine("warp")

    def test_disabled_env_falls_back_cleanly(self, monkeypatch):
        # REPRO_COMPILED=0 must make "auto" degrade silently to numpy and
        # an explicit "compiled" request fail loudly -- the no-compiler CI
        # leg's contract.
        from repro.simulation.vectorized_compiled import resolve_backend

        monkeypatch.setenv("REPRO_COMPILED", "0")
        _kernels._reset_for_tests()
        try:
            assert not _kernels.compiled_available()
            assert "disabled" in _kernels.compiled_unavailable_reason()
            assert resolve_backend("auto") == "numpy"
            with pytest.raises(RuntimeError):
                resolve_backend("compiled")
            assert resolve_engine("auto") == "lockstep"
            task = make_random_heterogeneous_task(2, 0.2, n_max=15)
            grid = simulate_many([task], [2], BreadthFirstPolicy())
            assert grid[0, 0, 0] == simulate_makespan_dense(
                task, Platform(2, 1), BreadthFirstPolicy()
            )
            with pytest.raises(RuntimeError):
                simulate_makespan_lockstep(
                    task, 2, BreadthFirstPolicy(), backend="compiled"
                )
        finally:
            monkeypatch.delenv("REPRO_COMPILED", raising=False)
            _kernels._reset_for_tests()

    def test_py_replay_escape_hatch_still_taken_and_exact(self, monkeypatch):
        # Transformed tasks put a zero-WCET v_sync on every path: stamped
        # families route the affected lanes through the scalar _py_replay
        # fallback.  The regression pins both halves: the hatch is (still)
        # actually taken on the numpy path, and its results stay exact.
        from repro.simulation import vectorized as vec

        calls = []
        original = vec._LockstepBatch._py_replay

        def spy(self, lane, g, f):
            calls.append(lane)
            return original(self, lane, g, f)

        monkeypatch.setattr(vec._LockstepBatch, "_py_replay", spy)
        hit = False
        for seed in range(10):
            task = transform(
                make_random_heterogeneous_task(seed, 0.3, n_max=20)
            ).task
            for name in ("critical-path-first", "shortest-first"):
                calls.clear()
                dense = simulate_makespan_dense(
                    task, Platform(2, 1), policy_by_name(name)
                )
                lockstep = simulate_makespan_lockstep(
                    task, Platform(2, 1), policy_by_name(name), backend="numpy"
                )
                assert lockstep == dense
                hit = hit or bool(calls)
        assert hit, "no seed exercised the _py_replay escape hatch"
