"""Service-layer workload requests plus the PR's bugfix regressions.

Covers three layers and three fixed bugs:

* ``submit_workload`` through the micro-batch facade (fingerprint cache,
  per-instance payload, metrics accounting);
* the ``POST /workload`` HTTP endpoint and ``ServiceClient.workload``;
* regression tests for the engine-selection lane count (the policy axis
  was dropped from the dense-vs-batched crossover), the sparse-grid
  fallback (rebuilt per-platform sub-grids), and the calibration loader
  (a failed first read was cached for the life of the process, and a
  malformed ``REPRO_VECTOR_THRESHOLD`` was ignored silently).
"""

from __future__ import annotations

import json
import time
import warnings
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.exceptions import ServiceError
from repro.generator.arrivals import PeriodicArrivals, TraceArrivals
from repro.service import EvaluationService, ServiceClient, start_server
from repro.service.facade import workload_payload
from repro.simulation.batch import resolve_engine
from repro.simulation.engine import simulate_makespan
from repro.simulation.platform import Platform
from repro.simulation.schedulers import policy_by_name
from repro.simulation.workload import (
    JobStream,
    build_workload,
    simulate_workload,
)

from strategies import make_random_heterogeneous_task, make_random_host_task

FAST_BATCHING = dict(flush_interval=0.05, quiet_interval=0.001)


def _streams():
    return [
        JobStream(
            task=make_random_heterogeneous_task(31, 0.3, n_max=18, c_max=9),
            arrivals=PeriodicArrivals(period=25.0, jitter=4.0, seed=1),
            deadline=60.0,
        ),
        JobStream(
            task=make_random_host_task(32, n_max=14, c_max=9),
            arrivals=TraceArrivals([0.0, 5.0, 40.0]),
        ),
    ]


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------
class TestFacadeWorkload:
    def test_matches_direct_simulation(self):
        streams = _streams()
        with EvaluationService(**FAST_BATCHING) as service:
            payload = service.submit_workload(streams, 150.0, Platform(2, 1))
        workload = build_workload(streams, 150.0)
        direct = simulate_workload(
            workload, Platform(2, 1), policy_by_name("breadth-first")
        )
        assert payload == workload_payload(direct)
        assert payload["instances"] == direct.count
        assert len(payload["per_instance"]) == direct.count
        entry = payload["per_instance"][0]
        assert {
            "stream",
            "index",
            "release",
            "completion",
            "response",
            "deadline",
            "missed",
        } <= set(entry)

    def test_identical_requests_hit_the_cache(self):
        streams = _streams()
        with EvaluationService(**FAST_BATCHING) as service:
            first = service.submit_workload(streams, 150.0, 2)
            second = service.submit_workload(streams, 150.0, 2)
            stats = service.stats()
            assert first == second
            assert stats["requests"]["workload"] == 2
            assert stats["cache"]["hits"] >= 1
            assert stats["engine"]["by_engine"]["lockstep"] >= 1

    def test_random_policy_requires_seed(self):
        streams = _streams()
        with EvaluationService(**FAST_BATCHING) as service:
            with pytest.raises(ValueError):
                service.submit_workload(streams, 100.0, 2, policy="random")
            seeded = service.submit_workload(
                streams, 100.0, 2, policy="random", policy_seed=5
            )
            assert seeded["instances"] > 0

    def test_validation_errors(self):
        with EvaluationService(**FAST_BATCHING) as service:
            with pytest.raises(ValueError):
                service.submit_workload([], 100.0, 2)
            with pytest.raises(ValueError):
                service.submit_workload(_streams(), -1.0, 2)


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def http_service():
    service = EvaluationService(**FAST_BATCHING)
    server, thread = start_server(service, port=0)
    client = ServiceClient(port=server.port, timeout=120)
    yield service, server, client
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    service.close()


class TestWorkloadHTTP:
    def test_round_trip_matches_facade(self, http_service):
        service, _, client = http_service
        streams = _streams()
        wire = client.workload(
            [
                {
                    "task": stream.task,
                    "arrivals": stream.arrivals,
                    "deadline": stream.deadline,
                }
                for stream in streams
            ],
            150.0,
            cores=2,
            accelerators=1,
        )
        expected = service.submit_workload(streams, 150.0, Platform(2, 1))
        assert wire == expected

    def test_arrivals_accepted_as_documents(self, http_service):
        _, _, client = http_service
        task = make_random_host_task(33, n_max=12)
        from_object = client.workload(
            [{"task": task, "arrivals": PeriodicArrivals(period=20.0)}], 80.0
        )
        from_document = client.workload(
            [
                {
                    "task": task,
                    "arrivals": {
                        "kind": "periodic",
                        "period": 20.0,
                        "offset": 0.0,
                        "jitter": 0.0,
                        "seed": 0,
                    },
                }
            ],
            80.0,
        )
        assert from_object == from_document

    def test_bad_requests_are_400(self, http_service):
        _, _, client = http_service
        with pytest.raises(ServiceError):
            client._request("/workload", {"streams": [], "horizon": 10.0})
        with pytest.raises(ServiceError):
            client._request(
                "/workload",
                {"streams": [{"task": {}, "arrivals": {"kind": "nope"}}]},
            )

    def test_unknown_path_lists_workload_endpoint(self, http_service):
        _, server, _ = http_service
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/nope", timeout=10
            )
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert "POST /workload" in body["endpoints"]


# ----------------------------------------------------------------------
# Regression: the policy axis counts towards the engine crossover
# ----------------------------------------------------------------------
class TestEngineSelectionCountsPolicyAxis:
    def test_ablation_shaped_burst_picks_batched_engine(self):
        # 1 task x 1 platform x 5 policies with the crossover at 4 lanes:
        # the burst is a 5-lane batch and must run on the batched kernel.
        # (The regressed lane count was len(tasks) * len(platforms) == 1,
        # which kept such bursts on the dense engine forever.)
        task = make_random_heterogeneous_task(44, 0.2, n_max=25)
        policies = [
            "breadth-first",
            "depth-first",
            "critical-path-first",
            "shortest-first",
            "longest-first",
        ]
        platform = Platform(2, 1)
        service = EvaluationService(
            flush_interval=30.0, quiet_interval=10.0, vector_threshold=4
        )
        with ThreadPoolExecutor(len(policies)) as pool:
            futures = {
                name: pool.submit(
                    service.submit_simulation,
                    task,
                    platform,
                    policy=name,
                    timeout=60,
                )
                for name in policies
            }
            while service.stats()["batching"]["pending"] < len(policies):
                time.sleep(0.001)
            service.close(timeout=60)
            for name in policies:
                assert futures[name].result(60) == simulate_makespan(
                    task, platform, policy_by_name(name)
                )
        stats = service.stats()
        by_engine = stats["engine"]["by_engine"]
        batched = resolve_engine("auto")
        assert by_engine["dense"] == 0
        assert by_engine[batched] >= 1
        assert stats["engine"]["evaluated_cells"] == len(policies)
        rendered = service.metrics.render_prometheus()
        assert (
            f'repro_service_sim_engine_total{{engine="{batched}"}}' in rendered
        )


# ----------------------------------------------------------------------
# Regression: sparse-grid fallback rebuilds dense per-platform sub-grids
# ----------------------------------------------------------------------
class TestSparseGridFallback:
    def test_fallback_wastes_no_cells_and_keeps_answers(self):
        # A diagonal-ish burst under one policy: 3 task rows x 3 platform
        # columns for only 4 requests (9 > 2x4) forces the per-platform
        # fallback.  Re-assembling each subset keeps the task-row dedupe
        # and evaluates exactly one cell per request.
        tasks = [
            make_random_heterogeneous_task(50 + s, 0.2, n_max=20)
            for s in range(3)
        ]
        platforms = [Platform(2, 1), Platform(4, 1), Platform(8, 1)]
        burst = [
            (tasks[0], platforms[0]),
            (tasks[0], platforms[1]),
            (tasks[1], platforms[2]),
            (tasks[2], platforms[2]),
        ]
        service = EvaluationService(
            flush_interval=30.0, quiet_interval=10.0, vector_threshold=10**6
        )
        with ThreadPoolExecutor(len(burst)) as pool:
            futures = [
                pool.submit(
                    service.submit_simulation, task, platform, timeout=60
                )
                for task, platform in burst
            ]
            while service.stats()["batching"]["pending"] < len(burst):
                time.sleep(0.001)
            service.close(timeout=60)
            results = [future.result(60) for future in futures]
        expected = [
            simulate_makespan(task, platform, policy_by_name("breadth-first"))
            for task, platform in burst
        ]
        assert results == expected
        stats = service.stats()
        assert stats["batching"]["batches"] == 1
        # The whole point of the fallback: no wasted grid cells.
        assert stats["engine"]["evaluated_cells"] == len(burst)


# ----------------------------------------------------------------------
# Regression: calibration loading and the threshold env override
# ----------------------------------------------------------------------
class TestCalibrationRegressions:
    @pytest.fixture(autouse=True)
    def _fresh_calibration_state(self):
        from repro.simulation import calibration

        calibration._reset_for_tests()
        yield
        calibration._reset_for_tests()

    def test_failed_read_is_not_cached(self, tmp_path, monkeypatch):
        from repro.simulation import calibration

        table = tmp_path / "calibration.json"
        monkeypatch.setattr(calibration, "CALIBRATION_PATH", table)

        # First read fails (file missing): the result must NOT be pinned.
        assert calibration.load_calibration() == {}
        assert calibration._cache is None

        # The table appears (e.g. --calibrate finished): the next call
        # must pick it up instead of serving the memoised failure.
        table.write_text(
            json.dumps({"vector_threshold": {"lockstep": 7, "compiled": 7}}),
            encoding="utf-8",
        )
        loaded = calibration.load_calibration()
        assert loaded["vector_threshold"]["lockstep"] == 7
        assert calibration._cache == loaded  # successful reads still memoise
        assert calibration.vector_threshold() == 7

    def test_partial_write_recovers(self, tmp_path, monkeypatch):
        from repro.simulation import calibration

        table = tmp_path / "calibration.json"
        monkeypatch.setattr(calibration, "CALIBRATION_PATH", table)
        table.write_text('{"vector_threshold": {"lock', encoding="utf-8")
        assert calibration.load_calibration() == {}
        table.write_text(
            json.dumps({"vector_threshold": {"lockstep": 9, "compiled": 9}}),
            encoding="utf-8",
        )
        assert calibration.vector_threshold() == 9

    def test_malformed_env_override_warns_once(self, monkeypatch):
        from repro.simulation import calibration

        monkeypatch.setenv(calibration.ENV_VAR, "banana")
        with pytest.warns(RuntimeWarning, match="banana"):
            first = calibration.vector_threshold()
        # The malformed value falls through to the calibration table.
        assert first == calibration.vector_threshold(explicit=None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            calibration.vector_threshold()
        assert caught == []  # one-time warning: silent on repeat lookups

    def test_valid_env_override_does_not_warn(self, monkeypatch):
        from repro.simulation import calibration

        monkeypatch.setenv(calibration.ENV_VAR, "42")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert calibration.vector_threshold() == 42
        assert caught == []
