"""Unit tests for the schedulability layer (:mod:`repro.analysis.schedulability`)."""

from __future__ import annotations

import pytest

from repro.analysis.schedulability import (
    AnalysisKind,
    acceptance_ratio,
    bound_for,
    federated_assignment,
    is_schedulable,
    minimum_cores,
)
from repro.core.examples import figure1_task
from repro.core.exceptions import AnalysisError
from repro.core.task import DagTask, TaskSet


def chain_task(name: str, wcets: list[float], period: float) -> DagTask:
    nodes = {f"{name}_{i}": wcet for i, wcet in enumerate(wcets)}
    names = list(nodes)
    edges = list(zip(names, names[1:]))
    return DagTask.from_wcets(nodes, edges, period=period, name=name)


class TestBoundFor:
    def test_auto_uses_heterogeneous_when_offloaded(self):
        result = bound_for(figure1_task(), 2, AnalysisKind.AUTO)
        assert result.method == "het"
        assert result.bound == 12

    def test_auto_uses_homogeneous_otherwise(self):
        task = chain_task("c", [1, 2, 3], period=10)
        assert bound_for(task, 2, AnalysisKind.AUTO).method == "hom"

    def test_explicit_homogeneous_on_heterogeneous_task(self):
        assert bound_for(figure1_task(), 2, AnalysisKind.HOMOGENEOUS).bound == 13

    def test_heterogeneous_requires_offloaded_node(self):
        task = chain_task("c", [1, 2], period=10)
        with pytest.raises(AnalysisError):
            bound_for(task, 2, AnalysisKind.HETEROGENEOUS)


class TestIsSchedulable:
    def test_uses_task_deadline(self):
        task = figure1_task(period=20, deadline=12)
        result = is_schedulable(task, 2)
        assert result.schedulable
        assert result.response_time.bound == 12
        assert result.slack() == 0

    def test_deadline_override(self):
        task = figure1_task(period=20, deadline=12)
        assert not is_schedulable(task, 2, deadline=11).schedulable
        assert is_schedulable(task, 2, deadline=30).schedulable

    def test_no_deadline_means_trivially_schedulable(self):
        result = is_schedulable(figure1_task(), 2)
        assert result.schedulable
        assert result.slack() is None

    def test_homogeneous_analysis_may_disagree(self):
        task = figure1_task(period=20, deadline=12)
        hom = is_schedulable(task, 2, AnalysisKind.HOMOGENEOUS)
        het = is_schedulable(task, 2, AnalysisKind.HETEROGENEOUS)
        assert not hom.schedulable  # R_hom = 13 > 12
        assert het.schedulable  # R_het = 12 <= 12


class TestMinimumCores:
    def test_figure1_needs_two_cores_for_deadline_12(self):
        task = figure1_task(period=20, deadline=12)
        assert minimum_cores(task) == 2

    def test_single_core_suffices_for_loose_deadline(self):
        task = figure1_task(period=40, deadline=40)
        assert minimum_cores(task) == 1

    def test_impossible_deadline_returns_none(self):
        task = figure1_task(period=20, deadline=9)
        # len(G') = 10 > 9: no number of cores can help the het analysis;
        # and len(G) = 8 <= 9 but interference never reaches 1 below m=inf...
        assert minimum_cores(task, AnalysisKind.HETEROGENEOUS) is None

    def test_deadline_below_critical_path_returns_none(self):
        task = figure1_task(period=20, deadline=7)
        assert minimum_cores(task) is None

    def test_no_deadline_needs_one_core(self):
        assert minimum_cores(figure1_task()) == 1

    def test_result_is_minimal(self):
        task = figure1_task(period=20, deadline=12)
        cores = minimum_cores(task)
        assert cores is not None
        assert bound_for(task, cores).meets_deadline(12)
        if cores > 1:
            assert not bound_for(task, cores - 1).meets_deadline(12)

    def test_heterogeneous_needs_fewer_or_equal_cores(self):
        task = figure1_task(period=20, deadline=13)
        het = minimum_cores(task, AnalysisKind.HETEROGENEOUS)
        hom = minimum_cores(task, AnalysisKind.HOMOGENEOUS)
        assert het is not None and hom is not None
        assert het <= hom


class TestFederatedAssignment:
    def test_heavy_and_light_partition(self):
        heavy = figure1_task(period=12, deadline=12)  # density 1.5 -> heavy
        light = chain_task("light", [1, 1], period=10)  # density 0.2
        assignment = federated_assignment(TaskSet([heavy, light]), cores=3)
        assert assignment.schedulable
        assert assignment.heavy == {"figure1": 2}
        assert assignment.light == ["light"]
        assert assignment.cores_used == 2

    def test_insufficient_cores_for_heavy_tasks(self):
        heavy = figure1_task(period=12, deadline=12)
        assignment = federated_assignment([heavy], cores=1)
        assert not assignment.schedulable
        assert "require" in assignment.reason

    def test_unschedulable_heavy_task(self):
        impossible = figure1_task(period=9, deadline=9)  # below len(G') = 10
        assignment = federated_assignment([impossible], cores=64)
        assert not assignment.schedulable
        assert "cannot meet" in assignment.reason

    def test_light_tasks_overflowing_remaining_cores(self):
        heavy = figure1_task(period=12, deadline=12)
        light_tasks = [chain_task(f"l{i}", [3, 3], period=10) for i in range(4)]
        assignment = federated_assignment([heavy] + light_tasks, cores=3)
        assert not assignment.schedulable
        assert "density" in assignment.reason

    def test_requires_deadlines(self):
        with pytest.raises(AnalysisError):
            federated_assignment([figure1_task()], cores=4)

    def test_all_light_taskset(self):
        light_tasks = [chain_task(f"l{i}", [1, 1], period=10) for i in range(3)]
        assignment = federated_assignment(light_tasks, cores=2)
        assert assignment.schedulable
        assert assignment.heavy == {}
        assert assignment.cores_used == 0


class TestAcceptanceRatio:
    def test_mixed_population(self):
        tasks = [
            figure1_task(period=20, deadline=12),  # schedulable on 2 cores
            figure1_task(period=20, deadline=9),  # not schedulable
        ]
        assert acceptance_ratio(tasks, 2) == 0.5

    def test_empty_population(self):
        assert acceptance_ratio([], 4) == 1.0

    def test_heterogeneous_analysis_dominates_homogeneous(self):
        tasks = [figure1_task(period=20, deadline=12) for _ in range(3)]
        het = acceptance_ratio(tasks, 2, AnalysisKind.AUTO)
        hom = acceptance_ratio(tasks, 2, AnalysisKind.HOMOGENEOUS)
        assert het >= hom
        assert het == 1.0
        assert hom == 0.0
