"""Deterministic fault-injection tests of the resilience layer (PR 6).

Every recovery path is exercised by *injected*, seeded, reproducible
faults -- never by timing luck:

* the primitives themselves (:class:`Deadline`, :func:`retry_call`,
  :class:`CircuitBreaker`, :class:`FaultInjector`) under fake clocks and
  fake sleeps;
* the parallel runner surviving genuine worker death (``os._exit`` in a
  pool worker, gated by an atomically consumed token file) with results
  bit-identical to the serial path;
* the oracle layer's verified bound-sandwich degraded mode under time
  budgets and an open circuit breaker, and the guarantee that degraded
  answers are never cached as exact;
* the evaluation service resolving **every accepted request exactly
  once** under injected solver hangs, executor exceptions, queue-deadline
  expiries, load shedding and mid-drain faults;
* the HTTP transport's stable error envelope (429 + ``Retry-After``,
  504, internal errors without leaked tracebacks) and the client's
  retry-with-backoff honouring ``Retry-After``.
"""

from __future__ import annotations

import threading
import time
import urllib.request

import pytest

from repro.core.examples import figure1_task
from repro.core.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    FaultInjectedError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    WorkerCrashError,
)
from repro.ilp.batch import (
    minimum_makespans_many,
    oracle_cache_clear,
    oracle_cache_size,
)
from repro.ilp.makespan import degraded_makespan_result, minimum_makespan
from repro.parallel import parallel_map, worker_respawn_count
from repro.resilience import (
    FAULTS,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    fault_point,
    retry_call,
)
from repro.service import EvaluationService, MicroBatcher, ServiceClient, start_server
from repro.simulation.batch import simulate_many

from strategies import (
    make_random_heterogeneous_task,
    make_random_integer_heterogeneous_task,
)

#: Batching windows so long that flushes only happen on close() -- the
#: standard idiom for deterministically coalescing a known request set.
PARKED_BATCHING = dict(flush_interval=30.0, quiet_interval=10.0)
FAST_BATCHING = dict(flush_interval=0.05, quiet_interval=0.001)


@pytest.fixture(autouse=True)
def _clean_faults():
    """No test may leak armed faults into its neighbours."""
    FAULTS.disarm()
    yield
    FAULTS.disarm()


def small_tasks(count: int, start_seed: int = 100):
    return [
        make_random_heterogeneous_task(seed, 0.2, n_max=8)
        for seed in range(start_seed, start_seed + count)
    ]


def small_solver_tasks(count: int, start_seed: int = 100):
    """Integer-WCET tasks sized for the exact oracles."""
    return [
        make_random_integer_heterogeneous_task(seed, 0.2, n_max=8)
        for seed in range(start_seed, start_seed + count)
    ]


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.after(None)
        assert deadline.unbounded
        assert deadline.remaining() is None
        assert not deadline.expired
        deadline.check()  # must not raise

    def test_finite_deadline_expires(self):
        deadline = Deadline.after(0.01)
        assert not deadline.unbounded
        assert deadline.remaining() <= 0.01
        time.sleep(0.02)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError, match="solve"):
            deadline.check("solve")

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_cap_takes_the_tighter_bound(self):
        assert Deadline.after(None).cap(None) is None
        assert Deadline.after(None).cap(3.0) == 3.0
        finite = Deadline.after(10.0)
        assert finite.cap(None) == pytest.approx(10.0, abs=0.1)
        assert finite.cap(2.0) == 2.0
        assert Deadline.after(0.0).cap(5.0) == 0.0


# ----------------------------------------------------------------------
# retry_call
# ----------------------------------------------------------------------
class _Flaky:
    """Callable failing ``failures`` times before succeeding."""

    def __init__(self, failures: int, error=ValueError("transient")):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


class TestRetryCall:
    def test_success_without_retries(self):
        sleeps = []
        assert retry_call(lambda: 42, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_backoff_schedule_is_deterministic_without_seed(self):
        fn = _Flaky(3)
        sleeps = []
        assert (
            retry_call(
                fn,
                attempts=4,
                base_delay=0.1,
                factor=2.0,
                max_delay=10.0,
                sleep=sleeps.append,
            )
            == "ok"
        )
        assert fn.calls == 4
        assert sleeps == [0.1, 0.2, 0.4]  # exact: no seed => zero jitter

    def test_seeded_jitter_is_replayable(self):
        def run():
            sleeps = []
            with pytest.raises(ValueError):
                retry_call(
                    _Flaky(10),
                    attempts=4,
                    base_delay=0.1,
                    seed=1234,
                    sleep=sleeps.append,
                )
            return sleeps

        first, second = run(), run()
        assert first == second  # same seed, same delays
        assert all(
            base <= delay <= base * 1.25
            for base, delay in zip([0.1, 0.2, 0.4], first)
        )

    def test_exhaustion_raises_the_last_error(self):
        fn = _Flaky(99)
        with pytest.raises(ValueError, match="transient"):
            retry_call(fn, attempts=3, sleep=lambda _: None)
        assert fn.calls == 3

    def test_non_matching_error_propagates_immediately(self):
        fn = _Flaky(99, error=KeyError("fatal"))
        with pytest.raises(KeyError):
            retry_call(fn, attempts=5, retry_on=(ValueError,), sleep=lambda _: None)
        assert fn.calls == 1

    def test_should_retry_veto(self):
        fn = _Flaky(99)
        with pytest.raises(ValueError):
            retry_call(
                fn,
                attempts=5,
                should_retry=lambda error: False,
                sleep=lambda _: None,
            )
        assert fn.calls == 1

    def test_retry_after_floors_the_delay(self):
        error = ServiceOverloadedError("busy", retry_after=1.5)
        fn = _Flaky(1, error=error)
        sleeps = []
        retry_call(
            fn,
            attempts=2,
            base_delay=0.01,
            retry_after=lambda err: getattr(err, "retry_after", None),
            sleep=sleeps.append,
        )
        assert sleeps == [1.5]

    def test_deadline_stops_retrying(self):
        fn = _Flaky(99)
        deadline = Deadline.after(0.0)  # already expired
        with pytest.raises(ValueError):
            retry_call(fn, attempts=5, deadline=deadline, sleep=lambda _: None)
        assert fn.calls == 1

    def test_on_retry_observes_each_attempt(self):
        seen = []
        retry_call(
            _Flaky(2),
            attempts=3,
            base_delay=0.5,
            on_retry=lambda attempt, error, delay: seen.append((attempt, delay)),
            sleep=lambda _: None,
        )
        assert seen == [(0, 0.5), (1, 1.0)]


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_after_threshold_and_counts(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert not breaker.allow()
        stats = breaker.stats()
        assert stats["trips"] == 1
        assert stats["rejections"] == 2
        assert stats["failures"] == 3
        assert stats["consecutive_failures"] == 3

    def test_half_open_probe_success_closes(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout=10.0, clock=clock)
        for _ in range(5):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_failure()  # one probe failure is enough
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.stats()["trips"] == 2
        assert not breaker.allow()

    def test_success_heals_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_call_wrapper_and_reset(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=99.0, clock=clock)
        with pytest.raises(RuntimeError):
            breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("down")))
        with pytest.raises(CircuitOpenError, match="open"):
            breaker.call(lambda: "never runs")
        breaker.reset()
        assert breaker.call(lambda: "up") == "up"


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_disabled_points_are_noops(self):
        injector = FaultInjector()
        assert not injector.enabled
        injector.fire("anything")  # no fault armed: silently nothing

    def test_raise_action_fires_once_by_default(self):
        injector = FaultInjector()
        injector.arm("solve", "raise", message="injected solver failure")
        with pytest.raises(FaultInjectedError, match="injected solver failure"):
            injector.fire("solve")
        injector.fire("solve")  # times=1 consumed
        stats = injector.stats()["points"]["solve"]
        assert stats["hits"] == 2
        assert stats["fires"] == 1

    def test_after_skips_and_times_caps(self):
        injector = FaultInjector()
        injector.arm("p", "raise", after=2, times=2)
        outcomes = []
        for _ in range(6):
            try:
                injector.fire("p")
                outcomes.append("ok")
            except FaultInjectedError:
                outcomes.append("boom")
        assert outcomes == ["ok", "ok", "boom", "boom", "ok", "ok"]

    def test_hang_action_sleeps(self):
        injector = FaultInjector()
        injector.arm("slow", "hang", delay=0.05)
        before = time.monotonic()
        injector.fire("slow")
        assert time.monotonic() - before >= 0.05

    def test_token_file_is_consumed_exactly_once(self, tmp_path):
        token = tmp_path / "one-shot"
        token.write_text("x")
        injector = FaultInjector()
        injector.arm("p", "raise", times=None, token=str(token))
        with pytest.raises(FaultInjectedError):
            injector.fire("p")
        assert not token.exists()
        injector.fire("p")  # token gone: never fires again
        assert injector.stats()["points"]["p"]["fires"] == 1

    def test_armed_context_manager_disarms(self):
        with FAULTS.armed("ctx.point", "raise"):
            assert FAULTS.enabled
            with pytest.raises(FaultInjectedError):
                fault_point("ctx.point")
        assert not FAULTS.enabled
        fault_point("ctx.point")  # disarmed: no-op

    def test_configure_parses_the_env_grammar(self):
        injector = FaultInjector()
        injector.configure(
            "oracle.solve:hang:delay=0.4:times=2; parallel.chunk:kill:"
            "token=/tmp/t:after=1;x.y:raise:times=inf:message=boom"
        )
        points = injector.stats()["points"]
        assert points["oracle.solve"] == {
            "action": "hang", "hits": 0, "fires": 0, "times": 2, "after": 0,
        }
        assert points["parallel.chunk"]["action"] == "kill"
        assert points["parallel.chunk"]["after"] == 1
        assert points["x.y"]["times"] is None

    @pytest.mark.parametrize(
        "spec",
        ["solo-entry", "p:explode", "p:raise:times", "p:raise:bogus=1"],
    )
    def test_configure_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            FaultInjector().configure(spec)


# ----------------------------------------------------------------------
# Parallel runner: pool respawn after worker death
# ----------------------------------------------------------------------
def _double(x: int) -> int:
    return 2 * x


def _refuse(x: int) -> int:
    raise ValueError("not a crash")


class TestParallelRespawn:
    def test_single_worker_kill_is_survived_bit_identically(self, tmp_path):
        token = tmp_path / "kill-once"
        token.write_text("x")
        serial = parallel_map(_double, range(24), jobs=1)
        before = worker_respawn_count()
        with FAULTS.armed(
            "parallel.chunk", "kill", times=None, token=str(token)
        ):
            survived = parallel_map(_double, range(24), jobs=2, chunksize=3)
        assert survived == serial
        assert not token.exists()  # exactly one worker consumed the kill
        assert worker_respawn_count() == before + 1

    def test_persistent_worker_death_raises_worker_crash(self):
        with FAULTS.armed("parallel.chunk", "kill", times=None):
            with pytest.raises(WorkerCrashError, match="respawn"):
                parallel_map(_double, range(8), jobs=2, max_respawns=1)

    def test_function_exceptions_are_not_crashes(self):
        with pytest.raises(ValueError, match="not a crash"):
            parallel_map(_refuse, range(4), jobs=2)

    def test_simulation_draws_identical_across_worker_death(self, tmp_path):
        tasks = small_tasks(6)
        reference = simulate_many(tasks, [2, 3], jobs=1)
        token = tmp_path / "kill-sim-worker"
        token.write_text("x")
        with FAULTS.armed(
            "parallel.chunk", "kill", times=None, token=str(token)
        ):
            survived = simulate_many(tasks, [2, 3], jobs=2, chunk_size=2)
        assert (survived == reference).all()


# ----------------------------------------------------------------------
# Oracle degraded mode
# ----------------------------------------------------------------------
class TestOracleDegradedMode:
    def test_degraded_result_is_a_verified_sandwich(self):
        task = figure1_task(period=20, deadline=15)
        exact = minimum_makespan(task, 2)
        degraded = degraded_makespan_result(task, 2, reason="test")
        stats = degraded.engine_stats
        assert degraded.degraded
        assert not degraded.optimal
        assert stats["engine"] == "degraded-bounds"
        assert stats["reason"] == "test"
        assert stats["lower_bound"] <= exact.makespan <= stats["upper_bound"]
        assert degraded.makespan == stats["upper_bound"]

    def test_zero_budget_degrades_and_never_caches(self):
        oracle_cache_clear()
        tasks = small_solver_tasks(4, start_seed=300)
        degraded = minimum_makespans_many(tasks, 2, budget=0.0)
        assert all(result.degraded for result in degraded)
        assert oracle_cache_size() == 0  # nothing cached as exact
        exact = minimum_makespans_many(tasks, 2)
        assert not any(result.degraded for result in exact)
        for loose, tight in zip(degraded, exact):
            assert loose.engine_stats["lower_bound"] <= tight.makespan
            assert tight.makespan <= loose.makespan

    def test_parallel_batch_degrades_between_waves(self):
        # jobs >= 2 dispatches in worker-sized waves; a hang that outlives
        # the budget inside wave 1 must degrade every later wave instead of
        # queueing more solves behind a budget that is already spent.
        tasks = small_solver_tasks(6, start_seed=380)
        with FAULTS.armed("oracle.solve", "hang", delay=0.3, times=None):
            results = minimum_makespans_many(
                tasks, 2, jobs=2, budget=0.15, use_cache=False
            )
        assert [result.degraded for result in results] == [False] * 2 + [True] * 4
        for result in results[2:]:
            assert result.engine_stats["reason"] == "budget-exhausted"
            assert result.engine_stats["lower_bound"] <= result.makespan

    def test_open_breaker_short_circuits_to_degraded(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=99.0, clock=clock)
        tasks = small_solver_tasks(2, start_seed=320)
        minimum_makespans_many(tasks, 2, budget=0.0, breaker=breaker, use_cache=False)
        assert breaker.state == CircuitBreaker.OPEN  # degraded batch = failure
        results = minimum_makespans_many(tasks, 2, breaker=breaker, use_cache=False)
        assert all(result.degraded for result in results)
        assert all(
            result.engine_stats["reason"] == "breaker-open" for result in results
        )
        assert breaker.stats()["rejections"] == 1

    def test_exact_batches_close_the_breaker_again(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        tasks = small_solver_tasks(2, start_seed=340)
        minimum_makespans_many(tasks, 2, budget=0.0, breaker=breaker, use_cache=False)
        clock.now = 5.0  # reset timeout elapses -> half-open probe allowed
        results = minimum_makespans_many(tasks, 2, breaker=breaker, use_cache=False)
        assert not any(result.degraded for result in results)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_engine_exception_records_breaker_failure(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=99.0)
        with FAULTS.armed("oracle.solve", "raise"):
            with pytest.raises(FaultInjectedError):
                minimum_makespans_many(
                    small_solver_tasks(1, start_seed=360), 2, breaker=breaker,
                    use_cache=False,
                )
        assert breaker.state == CircuitBreaker.OPEN


# ----------------------------------------------------------------------
# MicroBatcher worker hardening
# ----------------------------------------------------------------------
def _resolve_all(batch):
    for request in batch:
        request.resolve({"value": request.params["i"]})


def _request(i):
    from repro.service import BatchRequest

    return BatchRequest(
        kind="simulate",
        fingerprint=f"fp-{i:04d}",
        group_key=("g",),
        task=None,
        params={"i": i},
    )


class _DyingWorkerBatcher(MicroBatcher):
    """Worker thread that dies the moment a request is parked."""

    def _take_batch(self):
        with self._condition:
            while not self._pending:
                if self._closed:
                    return [], None
                self._condition.wait()
        raise RuntimeError("worker thread died")


class TestBatcherHardening:
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_worker_death_fails_parked_requests_and_closes(self):
        batcher = _DyingWorkerBatcher(_resolve_all, **PARKED_BATCHING)
        request = batcher.submit(_request(0))
        with pytest.raises(ServiceError, match="abandoned"):
            request.wait(5.0)
        deadline = time.monotonic() + 5.0
        while not batcher.closed and time.monotonic() < deadline:
            time.sleep(0.005)
        assert batcher.closed
        with pytest.raises(ServiceClosedError):
            batcher.submit(_request(1))
        batcher.close(timeout=5.0)

    def test_on_abandon_routes_executor_failures(self):
        abandoned = []

        def explode(batch):
            raise RuntimeError("executor exploded")

        batcher = MicroBatcher(
            explode,
            on_abandon=lambda request, error: abandoned.append(
                (request.fingerprint, type(error).__name__)
            ),
            **FAST_BATCHING,
        )
        request = batcher.submit(_request(7))
        with pytest.raises(RuntimeError, match="executor exploded"):
            request.wait(5.0)
        batcher.close(timeout=5.0)
        assert abandoned == [("fp-0007", "RuntimeError")]

    def test_admission_bounds_shed_with_retry_after(self):
        batcher = MicroBatcher(_resolve_all, max_pending=2, **PARKED_BATCHING)
        first, second = batcher.submit(_request(0)), batcher.submit(_request(1))
        with pytest.raises(ServiceOverloadedError, match="max_pending") as info:
            batcher.submit(_request(2))
        assert info.value.retry_after > 0
        assert batcher.stats()["shed"] == 1
        batcher.close(timeout=5.0)  # the accepted two still resolve
        assert first.result == {"value": 0}
        assert second.result == {"value": 1}

    def test_cost_bound_sheds_but_single_oversized_request_is_served(self):
        batcher = MicroBatcher(_resolve_all, max_pending_cost=10, **PARKED_BATCHING)
        huge = _request(0)
        huge.cost = 50
        batcher.submit(huge)  # oversized but alone: must stay servable
        small = _request(1)
        small.cost = 1
        with pytest.raises(ServiceOverloadedError, match="pending cost"):
            batcher.submit(small)
        batcher.close(timeout=5.0)
        assert huge.result == {"value": 0}

    def test_submit_vs_close_hammer_loses_no_request(self):
        # Satellite regression: under a submit/close race every submission
        # must either be accepted (and then resolved by the drain) or
        # rejected with ServiceClosedError -- never accepted-and-lost,
        # never hung.
        for round_no in range(20):
            batcher = MicroBatcher(
                _resolve_all, flush_interval=0.005, quiet_interval=0.0005
            )
            accepted: list = []
            rejected: list = []
            lock = threading.Lock()
            start = threading.Barrier(9)

            def submitter(base):
                start.wait()
                for i in range(base, base + 5):
                    try:
                        request = batcher.submit(_request(i))
                        with lock:
                            accepted.append(request)
                    except ServiceClosedError:
                        with lock:
                            rejected.append(i)

            threads = [
                threading.Thread(target=submitter, args=(worker * 5,))
                for worker in range(8)
            ]
            for thread in threads:
                thread.start()
            start.wait()
            batcher.close(timeout=10.0)
            for thread in threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive()
            assert len(accepted) + len(rejected) == 40
            for request in accepted:
                value = request.wait(5.0)  # resolved, exactly once, no hang
                assert value == {"value": request.params["i"]}


# ----------------------------------------------------------------------
# Service chaos: every accepted request resolves exactly once
# ----------------------------------------------------------------------
class TestServiceChaos:
    def _submit_all(self, service, tasks, outcomes, kind="makespan", **kwargs):
        """Submit one request per task from its own thread; record outcomes."""

        def run(task):
            try:
                if kind == "makespan":
                    value = service.submit_makespan(task, 2, **kwargs)
                else:
                    value = service.submit_simulation(task, 2, **kwargs)
                outcomes.append(("ok", task, value))
            except BaseException as error:  # noqa: BLE001 - recorded for asserts
                outcomes.append(("error", task, error))

        threads = [threading.Thread(target=run, args=(task,)) for task in tasks]
        for thread in threads:
            thread.start()
        return threads

    def test_solver_hang_degrades_trips_breaker_and_is_not_cached(self):
        oracle_cache_clear()
        tasks = small_solver_tasks(3, start_seed=400)
        service = EvaluationService(
            oracle_budget=0.15, breaker_threshold=1, **PARKED_BATCHING
        )
        outcomes: list = []
        try:
            # One hang longer than the whole batch budget: the first
            # instance survives (it started inside the budget), the rest of
            # the batch must degrade instead of queueing behind the hang.
            FAULTS.arm("oracle.solve", "hang", delay=0.3, times=1)
            threads = self._submit_all(service, tasks, outcomes)
            time.sleep(0.3)  # all three parked in one close-flushed batch
            service.close()
            for thread in threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive()
        finally:
            FAULTS.disarm()
        assert len(outcomes) == 3  # exactly once each
        payloads = [
            (task, payload) for status, task, payload in outcomes if status == "ok"
        ]
        assert len(payloads) == 3
        degraded = [payload for _, payload in payloads if payload["degraded"]]
        exact = [payload for _, payload in payloads if not payload["degraded"]]
        assert degraded and exact  # the hang split the batch
        for payload in degraded:
            assert not payload["optimal"]
            assert payload["engine_stats"]["engine"] == "degraded-bounds"
        stats = service.stats()["resilience"]
        assert stats["degraded"] == len(degraded)
        assert stats["breaker"]["trips"] == 1
        assert stats["breaker"]["state"] == "open"

        # Degraded answers were not cached as exact: a fresh service serving
        # the same fingerprints recomputes and returns the true optimum.
        verify = EvaluationService(**FAST_BATCHING)
        try:
            for task, payload in payloads:
                fresh = verify.submit_makespan(task, 2)
                assert not fresh["degraded"]
                reference = minimum_makespan(task, 2)
                assert fresh["makespan"] == reference.makespan
                if payload["degraded"]:
                    assert payload["makespan"] >= fresh["makespan"]
                else:
                    assert payload["makespan"] == fresh["makespan"]
        finally:
            verify.close()

    def test_executor_fault_fails_cleanly_without_poisoning(self):
        task = figure1_task(period=20, deadline=15)
        service = EvaluationService(**FAST_BATCHING)
        try:
            with FAULTS.armed("service.batch", "raise"):
                with pytest.raises(FaultInjectedError):
                    service.submit_simulation(task, 2)
            # The fingerprint is not poisoned: the same request succeeds.
            makespan = service.submit_simulation(task, 2)
            assert makespan > 0
        finally:
            service.close()

    def test_mid_drain_fault_still_resolves_every_request(self):
        tasks = small_tasks(4, start_seed=420)
        service = EvaluationService(**PARKED_BATCHING)
        outcomes: list = []
        try:
            FAULTS.arm(
                "service.drain", "raise", times=None, message="drain interrupted"
            )
            threads = self._submit_all(service, tasks, outcomes, kind="simulate")
            time.sleep(0.3)  # everyone parked; only close() can flush
            service.close()
            for thread in threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive()
        finally:
            FAULTS.disarm()
        assert len(outcomes) == 4  # exactly one outcome per accepted request
        statuses = {status for status, _, _ in outcomes}
        assert statuses == {"error"}
        for _, _, error in outcomes:
            assert isinstance(error, FaultInjectedError)
        assert service.closed
        with pytest.raises(ServiceClosedError):
            service.submit_simulation(tasks[0], 2)

    def test_queue_deadline_expiry_times_out_before_any_engine_runs(self):
        task = figure1_task(period=20, deadline=15)
        service = EvaluationService(**PARKED_BATCHING)
        try:
            with pytest.raises(ServiceTimeoutError):
                service.submit_simulation(task, 2, timeout=0.05)
            stats = service.stats()
            assert stats["resilience"]["timeouts"] >= 1
            assert stats["engine"]["batches"] == 0  # nothing evaluated
        finally:
            service.close()
        # The drain then expires the parked request batch-side as well.
        assert service.stats()["engine"]["batches"] == 0

    def test_default_timeout_applies_when_call_passes_none(self):
        task = figure1_task(period=20, deadline=15)
        service = EvaluationService(default_timeout=0.05, **PARKED_BATCHING)
        try:
            with pytest.raises(ServiceTimeoutError):
                service.submit_simulation(task, 2)
        finally:
            service.close()

    def test_shedding_rejects_excess_but_resolves_the_accepted(self):
        tasks = small_tasks(6, start_seed=440)
        service = EvaluationService(max_pending=2, **PARKED_BATCHING)
        outcomes: list = []
        threads = self._submit_all(service, tasks, outcomes, kind="simulate")
        time.sleep(0.4)  # let all six race admission; two park, four shed
        service.close()
        for thread in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        assert len(outcomes) == 6
        ok = [payload for status, _, payload in outcomes if status == "ok"]
        errors = [error for status, _, error in outcomes if status == "error"]
        assert len(ok) == 2  # every accepted request resolved with a value
        assert len(errors) == 4
        for error in errors:
            assert isinstance(error, ServiceOverloadedError)
            assert error.retry_after > 0
        assert service.stats()["resilience"]["shed"] == 4


# ----------------------------------------------------------------------
# HTTP + client resilience
# ----------------------------------------------------------------------
@pytest.fixture()
def http_service():
    service = EvaluationService(**FAST_BATCHING)
    server, thread = start_server(service, port=0)
    try:
        yield service, server
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5.0)


class TestHTTPResilience:
    def test_internal_errors_use_the_envelope_and_leak_nothing(self, http_service):
        service, server = http_service
        task = figure1_task(period=20, deadline=15)

        def explode(*args, **kwargs):
            raise RuntimeError("secret internal detail")

        service.submit_simulation = explode  # type: ignore[method-assign]
        client = ServiceClient(port=server.port, timeout=30, retries=0)
        with pytest.raises(ServiceError, match="internal server error") as info:
            client.simulate(task, cores=2)
        assert "secret" not in str(info.value)
        assert not getattr(info.value, "retryable", True)

    def test_not_found_envelope(self, http_service):
        _, server = http_service
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(f"http://127.0.0.1:{server.port}/nope")
        import json

        document = json.loads(info.value.read().decode("utf-8"))
        assert document["error"]["code"] == "not-found"
        assert document["error"]["retryable"] is False
        assert "endpoints" in document

    def test_overload_maps_to_429_with_retry_after_header(self, http_service):
        service, server = http_service
        task = figure1_task(period=20, deadline=15)

        def shed(*args, **kwargs):
            raise ServiceOverloadedError("queue full", retry_after=2.5)

        service.submit_simulation = shed  # type: ignore[method-assign]
        import json as json_module

        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/simulate",
            data=json_module.dumps(
                {"task": _task_document(task), "cores": 2}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 429
        assert info.value.headers["Retry-After"] == "3"  # ceil(2.5)
        envelope = json_module.loads(info.value.read().decode())["error"]
        assert envelope["code"] == "overloaded"
        assert envelope["retryable"] is True
        assert envelope["retry_after"] == 2.5

    def test_client_retries_honouring_retry_after(self, http_service):
        service, server = http_service
        task = figure1_task(period=20, deadline=15)
        calls = {"n": 0}
        original = service.submit_simulation

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ServiceOverloadedError("transient overload", retry_after=0.1)
            return original(*args, **kwargs)

        service.submit_simulation = flaky  # type: ignore[method-assign]
        sleeps = []
        client = ServiceClient(port=server.port, timeout=30, retries=2, backoff=0.01)
        import repro.service.client as client_module

        real_retry_call = client_module.retry_call
        client_module.retry_call = lambda fn, **kw: real_retry_call(
            fn, **{**kw, "sleep": sleeps.append}
        )
        try:
            makespan = client.simulate(task, cores=2)
        finally:
            client_module.retry_call = real_retry_call
        assert calls["n"] == 2
        assert makespan > 0
        assert sleeps == [0.1]  # Retry-After floored the 0.01 backoff

    def test_client_timeout_deadline_maps_to_504(self):
        service = EvaluationService(**PARKED_BATCHING)
        server, thread = start_server(service, port=0)
        client = ServiceClient(port=server.port, timeout=30, retries=0)
        try:
            task = figure1_task(period=20, deadline=15)
            with pytest.raises(ServiceTimeoutError) as info:
                client.simulate(task, cores=2, deadline=0.05)
            assert getattr(info.value, "retryable", False)
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5.0)

    def test_per_call_timeout_overrides_the_default(self, http_service):
        _, server = http_service
        client = ServiceClient(port=server.port, timeout=0.000001, retries=0)
        # The default timeout is hopeless; the per-call override must win.
        assert client.health(timeout=30)["status"] == "ok"

    def test_unreachable_server_stays_fast_with_retries(self):
        client = ServiceClient(port=1, timeout=1, retries=2, backoff=0.01)
        before = time.monotonic()
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()
        assert time.monotonic() - before < 5.0


def _task_document(task):
    from repro.io.json_io import task_to_dict

    return task_to_dict(task)
