"""Exhaustive brute-force makespan oracle for tiny instances.

The third, fully independent oracle of the cross-validation harness
(``tests/test_oracle_properties.py``).  It enumerates *every*
precedence-feasible dispatch sequence and greedily left-shifts each
dispatched node, which visits every active schedule -- a set guaranteed to
contain an optimum for makespan minimisation.  No bounds, no dominance
rules, no memoisation, no shared code with ``repro.ilp``: the
implementation is deliberately naive so that agreement with the pruned
branch-and-bound and the HiGHS ILP is meaningful evidence, not an artefact
of shared machinery.

Complexity is factorial; the oracle refuses instances with more than
``MAX_BUSY_NODES`` non-trivial nodes.
"""

from __future__ import annotations

from repro.core.task import DagTask

__all__ = ["MAX_BUSY_NODES", "exhaustive_minimum_makespan"]

#: Upper limit on non-zero-WCET nodes (factorial enumeration beyond this).
MAX_BUSY_NODES = 8


def exhaustive_minimum_makespan(
    task: DagTask, cores: int, accelerators: int = 1
) -> float:
    """Minimum makespan by exhaustive enumeration of dispatch sequences."""
    graph = task.graph
    nodes = list(graph.nodes())
    wcet = {node: int(round(graph.wcet(node))) for node in nodes}
    if any(abs(graph.wcet(node) - wcet[node]) > 1e-9 for node in nodes):
        raise ValueError("exhaustive oracle requires integer WCETs")
    busy = sum(1 for node in nodes if wcet[node] > 0)
    if busy > MAX_BUSY_NODES:
        raise ValueError(
            f"exhaustive oracle is limited to {MAX_BUSY_NODES} busy nodes, got {busy}"
        )
    predecessors = {node: set(graph.predecessors(node)) for node in nodes}
    offloaded = task.offloaded_node if accelerators > 0 else None
    accel_capacity = max(accelerators, 1)

    horizon = sum(wcet.values()) + max(wcet.values(), default=0) + 1
    host_usage = [0] * horizon
    accel_usage = [0] * horizon
    finish: dict = {}
    best = [float("inf")]

    def earliest_feasible_start(node) -> int:
        ready = max((finish[p] for p in predecessors[node]), default=0)
        duration = wcet[node]
        if duration == 0:
            return ready
        if node == offloaded:
            usage, capacity = accel_usage, accel_capacity
        else:
            usage, capacity = host_usage, cores
        start = ready
        while any(usage[t] >= capacity for t in range(start, start + duration)):
            start += 1
        return start

    def enumerate_sequences(remaining: set, current_makespan: int) -> None:
        if not remaining:
            if current_makespan < best[0]:
                best[0] = current_makespan
            return
        for node in list(remaining):
            if predecessors[node] & remaining:
                continue  # not yet dispatchable
            start = earliest_feasible_start(node)
            end = start + wcet[node]
            usage = accel_usage if node == offloaded else host_usage
            for t in range(start, end):
                usage[t] += 1
            finish[node] = end
            remaining.discard(node)
            enumerate_sequences(remaining, max(current_makespan, end))
            remaining.add(node)
            del finish[node]
            for t in range(start, end):
                usage[t] -= 1

    enumerate_sequences(set(nodes), 0)
    return float(best[0])
