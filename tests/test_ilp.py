"""Unit and cross-validation tests for the optimal-makespan solvers (:mod:`repro.ilp`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.examples import figure1_task
from repro.core.exceptions import SolverError
from repro.core.task import DagTask
from repro.core.transformation import transform
from repro.ilp.bounds import list_schedule_upper_bound, makespan_lower_bound
from repro.ilp.branch_and_bound import branch_and_bound_makespan
from repro.ilp.formulation import build_formulation
from repro.ilp.makespan import MakespanMethod, MakespanResult, minimum_makespan, verify_schedule
from repro.ilp.solver import solve_formulation, solve_minimum_makespan
from repro.simulation.engine import simulate_makespan

from strategies import (
    make_random_heterogeneous_task,
    make_random_integer_heterogeneous_task,
)


class TestBounds:
    def test_lower_bound_components(self):
        task = figure1_task()
        assert makespan_lower_bound(task, 2) == 8
        assert makespan_lower_bound(task, 1) == 14

    def test_lower_bound_without_accelerator(self):
        task = figure1_task()
        # Offloaded work is folded back onto the host.
        assert makespan_lower_bound(task, 1, accelerators=0) == 18

    def test_upper_bound_is_a_real_schedule(self):
        task = figure1_task()
        upper = list_schedule_upper_bound(task, 2)
        assert upper >= makespan_lower_bound(task, 2)
        assert upper <= task.volume

    def test_bounds_bracket_the_optimum(self):
        task = figure1_task()
        optimum = minimum_makespan(task, 2).makespan
        assert makespan_lower_bound(task, 2) <= optimum <= list_schedule_upper_bound(task, 2)


class TestFormulation:
    def test_dimensions_are_consistent(self):
        formulation = build_formulation(figure1_task(), 2)
        assert formulation.constraints_matrix.shape == (
            formulation.constraint_count,
            formulation.variable_count,
        )
        assert formulation.objective.shape[0] == formulation.variable_count
        assert formulation.integrality.shape[0] == formulation.variable_count
        # One binary block per (node, slot) pair plus the makespan variable.
        assert formulation.variable_count == len(formulation.start_variable_index) + 1

    def test_horizon_defaults_to_list_schedule(self):
        task = figure1_task()
        formulation = build_formulation(task, 2)
        assert formulation.horizon == int(list_schedule_upper_bound(task, 2))

    def test_horizon_below_lower_bound_rejected(self):
        with pytest.raises(SolverError):
            build_formulation(figure1_task(), 2, horizon=5)

    def test_fractional_wcets_rejected(self):
        task = DagTask.from_wcets({"a": 1.5, "b": 2}, [("a", "b")])
        with pytest.raises(SolverError):
            build_formulation(task, 2)

    def test_invalid_cores_rejected(self):
        with pytest.raises(SolverError):
            build_formulation(figure1_task(), 0)

    def test_decoding_rejects_unassigned_solution(self):
        formulation = build_formulation(figure1_task(), 2)
        with pytest.raises(SolverError):
            formulation.start_times_from_solution(np.zeros(formulation.variable_count))


class TestIlpSolver:
    def test_figure1_optimal_makespan(self):
        solution = solve_minimum_makespan(figure1_task(), 2)
        assert solution.makespan == 8
        assert solution.optimal
        verify_schedule(figure1_task(), solution.start_times, 2)

    def test_single_core_serialises_host_work(self):
        solution = solve_minimum_makespan(figure1_task(), 1)
        # Host work (14) can fully overlap the offloaded work (4).
        assert solution.makespan == 14

    def test_larger_horizon_does_not_change_the_optimum(self):
        base = solve_minimum_makespan(figure1_task(), 2)
        wide = solve_formulation(build_formulation(figure1_task(), 2, horizon=25))
        assert base.makespan == wide.makespan

    def test_homogeneous_task_supported(self):
        task = figure1_task().as_homogeneous()
        solution = solve_minimum_makespan(task, 2)
        assert solution.makespan >= makespan_lower_bound(task, 2)
        verify_schedule(task, solution.start_times, 2)

    def test_without_accelerator_everything_runs_on_host(self):
        solution = solve_minimum_makespan(figure1_task(), 2, accelerators=0)
        # 18 units of work on 2 cores with len(G) = 8 -> at least 9.
        assert solution.makespan >= 9


class TestBranchAndBound:
    def test_figure1_optimal_makespan(self):
        result = branch_and_bound_makespan(figure1_task(), 2)
        assert result.makespan == 8
        assert result.optimal
        verify_schedule(figure1_task(), result.start_times, 2)

    def test_transformed_task_optimum_is_not_better(self):
        # The added synchronisation can only constrain the schedule further.
        original = branch_and_bound_makespan(figure1_task(), 2).makespan
        transformed = transform(figure1_task()).task
        constrained = branch_and_bound_makespan(transformed, 2).makespan
        assert constrained >= original

    def test_fractional_wcets_rejected(self):
        task = DagTask.from_wcets({"a": 1.5, "b": 2}, [("a", "b")])
        with pytest.raises(SolverError):
            branch_and_bound_makespan(task, 2)

    def test_large_tasks_rejected(self):
        task = make_random_integer_heterogeneous_task(0, 0.2, n_max=40)
        if task.node_count <= 20:  # pragma: no cover - defensive
            pytest.skip("generated task unexpectedly small")
        with pytest.raises(SolverError):
            branch_and_bound_makespan(task, 2)

    def test_state_limit_returns_incumbent(self):
        # Five independent jobs {3, 3, 2, 2, 2} on two cores: the LPT-style
        # list schedule yields 7 while the optimum is 6, so the search has
        # real work to do and a tiny state limit must truncate it.
        task = DagTask.from_wcets({f"j{i}": w for i, w in enumerate([3, 3, 2, 2, 2])}, [])
        full = branch_and_bound_makespan(task, 2)
        assert full.optimal and full.makespan == 6
        truncated = branch_and_bound_makespan(task, 2, state_limit=3)
        assert not truncated.optimal
        assert 6 <= truncated.makespan <= 7  # the incumbent list schedule


class TestCrossValidation:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        cores=st.sampled_from([1, 2, 4]),
    )
    def test_ilp_and_branch_and_bound_agree(self, seed, cores):
        task = make_random_integer_heterogeneous_task(seed, 0.25, n_max=9, c_max=6)
        ilp = solve_minimum_makespan(task, cores)
        bnb = branch_and_bound_makespan(task, cores)
        assert ilp.makespan == pytest.approx(bnb.makespan)

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        cores=st.sampled_from([1, 2, 4]),
    )
    def test_optimum_is_bracketed_by_bounds_and_simulation(self, seed, cores):
        task = make_random_integer_heterogeneous_task(seed, 0.3, n_max=9, c_max=6)
        optimum = minimum_makespan(task, cores).makespan
        assert optimum >= makespan_lower_bound(task, cores) - 1e-9
        assert optimum <= simulate_makespan(task, cores) + 1e-9


class TestMinimumMakespanFacade:
    def test_auto_selects_branch_and_bound_for_tiny_tasks(self):
        result = minimum_makespan(figure1_task(), 2)
        assert isinstance(result, MakespanResult)
        assert result.method is MakespanMethod.BRANCH_AND_BOUND
        assert result.makespan == 8

    def test_auto_selects_ilp_for_larger_tasks(self):
        task = make_random_integer_heterogeneous_task(3, 0.2, n_max=25, c_max=5)
        if task.node_count <= 12:
            pytest.skip("generated task unexpectedly small")
        result = minimum_makespan(task, 4)
        assert result.method is MakespanMethod.ILP
        verify_schedule(task, result.start_times, 4)

    def test_explicit_method_selection(self):
        ilp = minimum_makespan(figure1_task(), 2, method=MakespanMethod.ILP)
        bnb = minimum_makespan(figure1_task(), 2, method=MakespanMethod.BRANCH_AND_BOUND)
        assert ilp.makespan == bnb.makespan == 8
        assert float(ilp) == 8.0

    def test_verify_schedule_detects_violations(self):
        task = figure1_task()
        result = minimum_makespan(task, 2)
        broken = dict(result.start_times)
        broken["v5"] = 0.0  # violates every precedence into v5
        with pytest.raises(SolverError):
            verify_schedule(task, broken, 2)
        incomplete = dict(result.start_times)
        del incomplete["v1"]
        with pytest.raises(SolverError):
            verify_schedule(task, incomplete, 2)

    def test_verify_schedule_detects_capacity_violation(self):
        task = figure1_task()
        # Every host node at time 0 on two cores is a capacity violation.
        starts = {node: 0.0 for node in task.graph.nodes()}
        with pytest.raises(SolverError):
            verify_schedule(task, starts, 2)
