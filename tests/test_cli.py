"""Tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.examples import figure1_task
from repro.io.json_io import save_task


@pytest.fixture
def task_file(tmp_path):
    return str(save_task(figure1_task(period=20, deadline=15), tmp_path / "task.json"))


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for args in (
            ["analyse", "task.json", "-m", "4"],
            ["transform", "task.json"],
            ["simulate", "task.json", "--policy", "depth-first"],
            ["simulate", "task.json", "--gantt"],
            ["makespan", "task.json", "--method", "bnb"],
            ["generate", "-o", "out", "--count", "2"],
            ["experiment", "figure9", "--scale", "quick"],
            ["serve", "--port", "0", "--max-batch", "8"],
        ):
            namespace = parser.parse_args(args)
            assert callable(namespace.func)

    def test_unknown_experiment_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure42"])


class TestCommands:
    def test_analyse(self, task_file, capsys):
        assert main(["analyse", task_file, "-m", "2"]) == 0
        output = capsys.readouterr().out
        assert "R_hom" in output and "= 13" in output
        assert "R_het" in output and "= 12" in output
        assert "schedulable" in output

    def test_analyse_missing_file(self, capsys):
        assert main(["analyse", "no-such-file.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_transform_writes_output(self, task_file, tmp_path, capsys):
        output = tmp_path / "prime.json"
        assert main(["transform", task_file, "-o", str(output)]) == 0
        document = json.loads(output.read_text())
        assert "v_sync" in document["nodes"]
        assert "sync node" in capsys.readouterr().out

    def test_transform_to_dot(self, task_file, tmp_path):
        output = tmp_path / "prime.dot"
        assert main(["transform", task_file, "-o", str(output)]) == 0
        assert output.read_text().startswith("digraph")

    def test_simulate_fast_path_is_default(self, task_file, capsys):
        # The default route goes through the batched simulate_many fast
        # path: same makespan as the reference engine, no Gantt chart.
        assert main(["simulate", task_file, "-m", "2"]) == 0
        output = capsys.readouterr().out
        assert "makespan" in output and "= 12" in output
        assert "core0" not in output

    def test_simulate_gantt(self, task_file, capsys):
        assert main(["simulate", task_file, "-m", "2", "--gantt"]) == 0
        output = capsys.readouterr().out
        assert "makespan" in output and "= 12" in output
        assert "core0" in output

    def test_simulate_seeded_random_policy(self, task_file, capsys):
        assert (
            main(["simulate", task_file, "-m", "2", "--policy", "random",
                  "--seed", "7"])
            == 0
        )
        assert "makespan" in capsys.readouterr().out

    def test_simulate_transformed(self, task_file, capsys):
        assert main(["simulate", task_file, "-m", "2", "--transformed"]) == 0
        output = capsys.readouterr().out
        assert "makespan" in output and "= 10" in output

    def test_makespan(self, task_file, capsys):
        assert main(["makespan", task_file, "-m", "2", "--method", "ilp", "-v"]) == 0
        output = capsys.readouterr().out
        assert "minimum makespan = 8" in output
        assert "v_off" in output

    def test_generate(self, tmp_path, capsys):
        output_dir = tmp_path / "generated"
        assert (
            main(
                [
                    "generate",
                    "-o",
                    str(output_dir),
                    "--preset",
                    "small-fig7-m2",
                    "--count",
                    "2",
                    "--seed",
                    "3",
                    "--offload-fraction",
                    "0.2",
                ]
            )
            == 0
        )
        files = sorted(output_dir.glob("*.json"))
        assert len(files) == 2
        document = json.loads(files[0].read_text())
        assert document["offloaded_node"] is not None

    def test_experiment_with_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "fig9.csv"
        json_path = tmp_path / "fig9.json"
        assert (
            main(
                [
                    "experiment",
                    "worked-example",
                    "--csv",
                    str(csv_path),
                    "--json",
                    str(json_path),
                ]
            )
            == 0
        )
        assert csv_path.exists() and json_path.exists()
        output = capsys.readouterr().out
        assert "worked example" in output.lower()

    def test_experiment_quick_figure9(self, capsys):
        assert main(["experiment", "figure9", "--dags", "3", "--seed", "1"]) == 0
        assert "m=2" in capsys.readouterr().out

    def test_serve_rejects_bad_flush_intervals(self, capsys):
        # quiet_interval defaults to 0.002 and must not exceed the deadline.
        assert main(["serve", "--port", "0", "--flush-interval", "0.0001"]) == 1
        assert "error" in capsys.readouterr().err

    def test_serve_reports_bind_failures(self, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        port = blocker.getsockname()[1]
        try:
            assert main(["serve", "--port", str(port)]) == 1
            assert "cannot bind" in capsys.readouterr().err
        finally:
            blocker.close()
