"""End-to-end observability tests (PR 7): /metrics over HTTP, lifecycle
states in /health, the transport regressions the layer flushed out, and a
short in-process run of the sustained-load harness.

These tests exercise the full serving stack -- ``EvaluationService`` +
``ServiceHTTPServer`` on an ephemeral port, driven through
``ServiceClient`` -- and assert the PR 7 reconciliation contract: the
``/stats`` document, the ``/metrics`` JSON rendering and the Prometheus
text exposition all read the *same* counter objects, so their request
totals must agree exactly, never approximately.
"""

from __future__ import annotations

import http.client
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.examples import figure1_task
from repro.core.exceptions import ServiceError
from repro.io.json_io import task_to_dict
from repro.service import (
    BatchRequest,
    EvaluationService,
    MicroBatcher,
    ServiceClient,
    start_server,
)
from repro.simulation.engine import simulate_makespan
from repro.simulation.platform import Platform
from repro.simulation.schedulers import policy_by_name

from strategies import make_random_heterogeneous_task
from test_metrics import parse_prometheus

_BENCHMARKS = str(Path(__file__).resolve().parent.parent / "benchmarks")
if _BENCHMARKS not in sys.path:
    sys.path.insert(0, _BENCHMARKS)

import load_harness  # noqa: E402  (benchmarks/ is not a package)

FAST_BATCHING = dict(flush_interval=0.05, quiet_interval=0.001)


@pytest.fixture()
def served():
    """A fresh service + HTTP server + client (clean counters per test)."""
    service = EvaluationService(**FAST_BATCHING)
    server, thread = start_server(service, port=0)
    client = ServiceClient(port=server.port, timeout=120)
    yield service, server, client
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    service.close()


# ----------------------------------------------------------------------
# /metrics over HTTP: parity and reconciliation
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_stats_and_metrics_reconcile_after_burst(self, served):
        service, _, client = served
        tasks = [make_random_heterogeneous_task(seed, 0.2) for seed in range(6)]
        with ThreadPoolExecutor(max_workers=12) as pool:
            futures = [
                pool.submit(client.simulate, task, cores)
                for task in tasks
                for cores in (2, 4)
            ] + [pool.submit(client.analyse, task, 2) for task in tasks[:3]]
            for future in futures:
                future.result(timeout=120)

        stats = client.stats()
        metrics = client.metrics()
        requests_by_kind = {
            series["labels"]["kind"]: series["value"]
            for series in metrics["counters"]["repro_service_requests_total"][
                "series"
            ]
        }
        assert requests_by_kind["simulate"] == stats["requests"]["simulate"] == 12
        assert requests_by_kind["analyse"] == stats["requests"]["analyse"] == 3
        assert sum(requests_by_kind.values()) == stats["requests"]["total"]

        latency_series = {
            series["labels"]["endpoint"]: series
            for series in metrics["histograms"]["repro_http_request_seconds"][
                "series"
            ]
        }
        assert latency_series["/simulate"]["count"] == 12
        assert latency_series["/analyse"]["count"] == 3
        for series in latency_series.values():
            assert series["count"] == sum(series["counts"])
            assert 0.0 <= series["p50"] <= series["p95"] <= series["p99"]

        responses = {
            (series["labels"]["endpoint"], series["labels"]["status"]):
                series["value"]
            for series in metrics["counters"]["repro_http_responses_total"][
                "series"
            ]
        }
        assert responses[("/simulate", "200")] == 12
        assert responses[("/analyse", "200")] == 3

    def test_kernel_counters_reconcile_with_trace_spans(self, served):
        """PR 10: ``repro_kernel_*`` rows equal the trace-leaf profiles.

        Both views are fed from the identical :class:`KernelBatchStats`
        records -- the counters aggregate them, the engine spans carry the
        merged profile in their ``kernel`` attribute -- so summing the
        (deduplicated) span profiles across every kept trace must
        reproduce the ``/metrics`` totals exactly.
        """
        service, _, client = served
        tasks = [make_random_heterogeneous_task(seed, 0.3) for seed in range(4)]
        for task in tasks:  # distinct tasks: all cache misses, engine runs
            assert client.simulate(task, cores=2) > 0

        # Traces finish after the response write -- let them land.
        deadline = time.monotonic() + 5.0
        while (
            service.tracer.ring_stats()["kept"] < len(tasks)
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)

        metrics = client.metrics()
        steps_total = sum(
            series["value"]
            for series in metrics["counters"]["repro_kernel_steps_total"][
                "series"
            ]
        )
        events_total = sum(
            series["value"]
            for series in metrics["counters"]["repro_kernel_events_total"][
                "series"
            ]
        )
        occupancy_batches = sum(
            series["count"]
            for series in metrics["histograms"]["repro_kernel_lane_occupancy"][
                "series"
            ]
        )

        span_steps = span_events = span_batches = 0
        seen: set = set()  # shared spans recur in every member trace
        for summary in client.traces(limit=100)["traces"]:
            payload = client.trace(summary["trace_id"])
            for span in payload["spans"]:
                kernel = span["attributes"].get("kernel")
                if not kernel or span["span_id"] in seen:
                    continue
                seen.add(span["span_id"])
                span_steps += kernel["steps"]
                span_events += kernel["events"]
                span_batches += kernel["batches"]
                assert 0.0 <= kernel["occupancy"] <= 1.0

        assert span_steps > 0 and span_events > 0
        assert steps_total == span_steps
        assert events_total == span_events
        assert occupancy_batches == span_batches

    def test_prometheus_text_matches_json_over_http(self, served):
        _, _, client = served
        task = figure1_task(period=20, deadline=15)
        client.simulate(task, cores=2)
        client.simulate(task, cores=4)

        document = client.metrics()  # JSON rendering
        samples = parse_prometheus(client.metrics(format="text"))

        for name, payload in document["counters"].items():
            for series in payload["series"]:
                key = (name, tuple(sorted(series["labels"].items())))
                # The text scrape itself is one /metrics response ahead of
                # the JSON scrape on exactly the /metrics-endpoint series.
                if series["labels"].get("endpoint") == "/metrics":
                    assert samples[key] >= series["value"]
                else:
                    assert samples[key] == series["value"], name
        histogram = document["histograms"]["repro_service_queue_wait_seconds"]
        for series in histogram["series"]:
            labels = tuple(sorted(series["labels"].items()))
            assert samples[(
                "repro_service_queue_wait_seconds_count", labels
            )] == series["count"]

    def test_metrics_content_negotiation(self, served):
        _, server, _ = served
        for accept, expected_type in (
            ("application/json", "application/json"),
            ("text/plain", "text/plain; version=0.0.4; charset=utf-8"),
            (None, "text/plain; version=0.0.4; charset=utf-8"),
        ):
            connection = http.client.HTTPConnection("127.0.0.1", server.port)
            headers = {"Accept": accept} if accept else {}
            connection.request("GET", "/metrics", headers=headers)
            response = connection.getresponse()
            body = response.read()
            assert response.status == 200
            assert response.headers["Content-Type"] == expected_type
            if expected_type == "application/json":
                assert "counters" in json.loads(body)
            else:
                assert b"# TYPE repro_http_request_seconds histogram" in body
            connection.close()

    def test_unknown_path_folds_into_other_label(self, served):
        _, _, client = served
        with pytest.raises(ServiceError):
            client._request("/definitely-not-an-endpoint")
        responses = client.metrics()["counters"]["repro_http_responses_total"]
        labelled = {
            series["labels"]["endpoint"] for series in responses["series"]
        }
        assert "other" in labelled
        assert "/definitely-not-an-endpoint" not in labelled

    def test_gauges_report_live_cache_state(self, served):
        _, _, client = served
        task = figure1_task(period=20, deadline=15)
        client.simulate(task, cores=2)
        client.simulate(task, cores=2)  # second hit comes from the cache
        gauges = client.metrics()["gauges"]
        [entries] = gauges["repro_service_cache_entries"]["series"]
        [ratio] = gauges["repro_service_cache_hit_ratio"]["series"]
        assert entries["value"] == 1
        assert ratio["value"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# /health lifecycle (satellite 2)
# ----------------------------------------------------------------------
class TestHealthLifecycle:
    def test_ok_then_closed_over_http(self, served):
        service, server, client = served
        assert client.health()["status"] == "ok"
        service.close()
        document = client.health()
        assert document["status"] == "closed"
        # and the transport reported it as a non-200 readiness failure:
        connection = http.client.HTTPConnection("127.0.0.1", server.port)
        connection.request("GET", "/health")
        response = connection.getresponse()
        response.read()
        assert response.status == 503
        connection.close()

    def test_draining_window_between_close_and_drained(self):
        """lifecycle() == 'draining' while the close-flush is in flight."""
        release = threading.Event()
        executing = threading.Event()

        def execute(batch):
            executing.set()
            assert release.wait(timeout=30)
            for request in batch:
                request.resolve(0.0)

        batcher = MicroBatcher(execute, flush_interval=30.0, quiet_interval=30.0)
        try:
            batcher.submit(
                BatchRequest(
                    kind="simulate",
                    fingerprint="f" * 40,
                    group_key=(),
                    task=None,
                    params={},
                )
            )
            closer = threading.Thread(target=batcher.close)
            closer.start()
            assert executing.wait(timeout=30)  # close-flush has been taken
            assert batcher.closed
            assert not batcher.drained  # the observable "draining" state
        finally:
            release.set()
        closer.join(timeout=30)
        assert batcher.drained


# ----------------------------------------------------------------------
# Transfer-encoding regressions (satellite 3)
# ----------------------------------------------------------------------
def _raw_post(port: int, payload: bytes, headers: dict[str, str]) -> tuple[int, dict]:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    connection.putrequest("POST", "/simulate", skip_accept_encoding=True)
    for name, value in headers.items():
        connection.putheader(name, value)
    connection.endheaders()
    if payload:
        connection.send(payload)
    response = connection.getresponse()
    body = json.loads(response.read().decode("utf-8"))
    status = response.status
    connection.close()
    return status, body


class TestTransferEncoding:
    def test_chunked_body_is_decoded(self, served):
        _, server, _ = served
        task = figure1_task(period=20, deadline=15)
        document = json.dumps({"task": task_to_dict(task), "cores": 2}).encode()
        # split into two chunks to exercise reassembly
        half = len(document) // 2
        chunked = b"".join(
            b"%x\r\n%s\r\n" % (len(part), part)
            for part in (document[:half], document[half:])
            if part
        ) + b"0\r\n\r\n"
        status, body = _raw_post(
            server.port, chunked, {"Transfer-Encoding": "chunked"}
        )
        assert status == 200
        assert body["makespan"] == simulate_makespan(
            task, Platform(2), policy_by_name("breadth-first")
        )

    def test_unsupported_transfer_encoding_rejected_501(self, served):
        _, server, _ = served
        status, body = _raw_post(
            server.port, b"", {"Transfer-Encoding": "gzip, chunked"}
        )
        assert status == 501
        assert body["error"]["code"] == "unsupported-transfer-encoding"
        assert body["error"]["retryable"] is False

    def test_malformed_chunk_size_rejected_400(self, served):
        _, server, _ = served
        status, body = _raw_post(
            server.port,
            b"zzz\r\nnot hex\r\n0\r\n\r\n",
            {"Transfer-Encoding": "chunked"},
        )
        assert status == 400
        assert body["error"]["code"] == "bad-request"

    def test_bodyless_post_rejected_400(self, served):
        _, server, _ = served
        status, body = _raw_post(server.port, b"", {"Content-Length": "0"})
        assert status == 400
        assert "chunked transfer-encoding" in body["error"]["message"]


# ----------------------------------------------------------------------
# Load harness, in process (satellite 4)
# ----------------------------------------------------------------------
class TestLoadHarnessInProcess:
    def test_short_run_complete_and_monotone(self, served):
        _, server, _ = served
        client = ServiceClient(port=server.port, timeout=60, retries=0)
        rates = {"/simulate": 20.0, "/analyse": 5.0, "/health": 5.0}
        duration = 2.0

        result = load_harness.run_load(
            client, rates, duration=duration, workers=16
        )
        cycle_s, programme = load_harness.compute_schedule(rates)
        offered = load_harness.offered_rates(cycle_s, programme)
        summary = load_harness.summarise(result, offered)

        # complete: every dispatched request produced exactly one sample
        for endpoint, entry in summary["endpoints"].items():
            assert entry["lost"] == 0, (endpoint, entry)
            assert entry["errors"] == {}, (endpoint, entry)
            assert entry["dispatched"] == entry["completed"]
            assert entry["p50_ms"] <= entry["p99_ms"] <= entry["max_ms"]

        # the dispatch programme replays the hyperperiod without drift
        expected = {
            endpoint: sum(1 for _, e in programme if e == endpoint)
            for endpoint in rates
        }
        cycles = duration / cycle_s
        for endpoint, per_cycle in expected.items():
            dispatched = summary["endpoints"][endpoint]["dispatched"]
            assert dispatched >= per_cycle * int(cycles)

        # windows tile the run: monotone starts, no window missing
        windows = summary["latency_windows"]
        starts = [window["start_s"] for window in windows]
        assert starts == sorted(starts)
        assert len(windows) >= int(duration)
        sampled = sum(
            entry["count"]
            for window in windows
            for entry in window["endpoints"].values()
        )
        assert sampled == sum(
            entry["ok"] for entry in summary["endpoints"].values()
        )

        # /metrics reconciles exactly with /stats and the dispatch ledger
        consistency = load_harness.check_consistency(client, summary)
        assert consistency["consistent"], consistency["checks"]

    def test_compute_schedule_rates_exact_over_hyperperiod(self):
        rates = {"/simulate": 40.0, "/analyse": 10.0, "/health": 5.0}
        cycle_s, programme = load_harness.compute_schedule(rates, tick=0.001)
        offered = load_harness.offered_rates(cycle_s, programme)
        for endpoint, rate in rates.items():
            assert offered[endpoint] == pytest.approx(rate, rel=0.05)
        offsets = [offset for offset, _ in programme]
        assert offsets == sorted(offsets)
        assert all(0.0 <= offset < cycle_s for offset in offsets)

    def test_compute_schedule_rejects_bad_input(self):
        with pytest.raises(ValueError, match="tick"):
            load_harness.compute_schedule({"/health": 1.0}, tick=0.0)
        with pytest.raises(ValueError, match="positive"):
            load_harness.compute_schedule({"/health": -1.0})
