"""Online multi-instance workloads: arrival processes, metrics, engines.

The load-bearing contract is bit-identity: the shared-capacity coupled
lockstep engine (``backend="numpy"``) must produce *exactly* the same
per-instance completion times as the scalar reference event loop, for
every policy family, arrival pattern, platform shape and seed -- enforced
here with a hypothesis harness.  A single instance released at time zero
must in turn reproduce :func:`repro.simulation.engine.simulate_makespan`
bit-for-bit, anchoring the whole subsystem to the engines already pinned
by the rest of the suite.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import SimulationError
from repro.generator.arrivals import (
    PeriodicArrivals,
    SporadicArrivals,
    TraceArrivals,
    arrival_from_dict,
    arrival_to_dict,
)
from repro.simulation.engine import simulate_makespan
from repro.simulation.platform import Platform
from repro.simulation.schedulers import policy_by_name
from repro.simulation.workload import (
    JobInstance,
    JobStream,
    build_workload,
    resolve_workload_backend,
    simulate_workload,
    simulate_workload_reference,
)

from strategies import make_random_heterogeneous_task, make_random_host_task

_POLICY_NAMES = (
    "breadth-first",
    "depth-first",
    "critical-path-first",
    "shortest-first",
    "longest-first",
    "fixed-priority",
    "random",
)


def _policy(name: str, seed: int = 0):
    return policy_by_name(name, seed) if name == "random" else policy_by_name(name)


def _task(seed: int, heterogeneous: bool):
    if heterogeneous:
        return make_random_heterogeneous_task(
            seed, offload_fraction=0.3, n_max=16, c_max=8
        )
    return make_random_host_task(seed, n_max=16, c_max=8)


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
class TestArrivalProcesses:
    def test_periodic_without_jitter_is_exact(self):
        arrivals = PeriodicArrivals(period=10.0, offset=3.0)
        times = arrivals.release_times(45.0)
        assert times.tolist() == [3.0, 13.0, 23.0, 33.0, 43.0]

    def test_periodic_jitter_is_bounded_and_sorted(self):
        arrivals = PeriodicArrivals(period=10.0, jitter=4.0, seed=5)
        times = arrivals.release_times(200.0)
        base = np.arange(len(times)) * 10.0
        # Releases stay sorted even though each is independently jittered
        # within [k*period, k*period + jitter).
        assert np.all(np.diff(times) >= 0)
        assert np.all(times >= base) and np.all(times < base + 4.0)

    def test_periodic_jitter_is_seeded(self):
        one = PeriodicArrivals(period=7.0, jitter=2.0, seed=1).release_times(100.0)
        same = PeriodicArrivals(period=7.0, jitter=2.0, seed=1).release_times(100.0)
        other = PeriodicArrivals(period=7.0, jitter=2.0, seed=2).release_times(100.0)
        assert one.tolist() == same.tolist()
        assert one.tolist() != other.tolist()

    def test_sporadic_respects_gap_bounds(self):
        arrivals = SporadicArrivals(min_gap=3.0, max_gap=9.0, seed=11)
        times = arrivals.release_times(500.0)
        gaps = np.diff(times)
        assert len(times) > 10
        assert np.all(gaps >= 3.0) and np.all(gaps <= 9.0)
        assert np.all(times < 500.0)

    def test_trace_sorts_and_validates(self):
        assert TraceArrivals([5.0, 1.0, 3.0]).release_times(10.0).tolist() == [
            1.0,
            3.0,
            5.0,
        ]
        with pytest.raises(ValueError):
            TraceArrivals([-1.0, 2.0])

    def test_horizon_extension_preserves_prefix(self):
        # Growing the horizon must never change already-drawn releases
        # (the chunked seeded scheme draws per chunk, not per horizon).
        for arrivals in (
            PeriodicArrivals(period=2.0, jitter=1.0, seed=3),
            SporadicArrivals(min_gap=1.0, max_gap=4.0, seed=3),
        ):
            short = arrivals.release_times(100.0)
            long = arrivals.release_times(400.0)
            assert long[: len(short)].tolist() == short.tolist()

    def test_release_times_draw_identical_under_jobs(self):
        for arrivals in (
            PeriodicArrivals(period=1.5, jitter=0.75, seed=9),
            SporadicArrivals(min_gap=0.5, max_gap=2.0, seed=9),
        ):
            serial = arrivals.release_times(600.0)
            parallel = arrivals.release_times(600.0, jobs=3)
            assert serial.tolist() == parallel.tolist()

    def test_round_trip_through_dict(self):
        processes = [
            PeriodicArrivals(period=4.0, offset=1.0, jitter=0.5, seed=2),
            SporadicArrivals(min_gap=1.0, max_gap=3.0, offset=0.5, seed=4),
            TraceArrivals([0.0, 2.5, 2.5, 9.0]),
        ]
        for process in processes:
            clone = arrival_from_dict(arrival_to_dict(process))
            assert type(clone) is type(process)
            assert (
                clone.release_times(50.0).tolist()
                == process.release_times(50.0).tolist()
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            arrival_from_dict({"kind": "poisson", "rate": 1.0})

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PeriodicArrivals(period=0.0)
        with pytest.raises(ValueError):
            SporadicArrivals(min_gap=0.0, max_gap=1.0)
        with pytest.raises(ValueError):
            SporadicArrivals(min_gap=2.0, max_gap=1.0)


# ----------------------------------------------------------------------
# Streams and workload assembly
# ----------------------------------------------------------------------
class TestStreamsAndAssembly:
    def test_instances_carry_absolute_deadlines(self):
        task = make_random_host_task(1, n_max=10)
        stream = JobStream(
            task=task, arrivals=PeriodicArrivals(period=10.0), deadline=8.0
        )
        jobs = stream.instances(35.0)
        assert [job.release for job in jobs] == [0.0, 10.0, 20.0, 30.0]
        assert [job.deadline for job in jobs] == [8.0, 18.0, 28.0, 38.0]

    def test_relative_deadline_falls_back_to_task(self):
        import dataclasses

        task = make_random_host_task(2, n_max=10)
        arrivals = PeriodicArrivals(period=5.0)
        assert JobStream(task, arrivals, deadline=3.0).relative_deadline() == 3.0
        untimed = dataclasses.replace(task, period=None, deadline=None)
        assert JobStream(untimed, arrivals).relative_deadline() is None
        # DagTask defaults an unset deadline to the period (implicit model).
        implicit = dataclasses.replace(task, period=9.0, deadline=None)
        assert JobStream(implicit, arrivals).relative_deadline() == 9.0
        constrained = dataclasses.replace(task, period=9.0, deadline=7.0)
        assert JobStream(constrained, arrivals).relative_deadline() == 7.0

    def test_build_workload_orders_by_release_then_stream(self):
        tasks = [make_random_host_task(s, n_max=8) for s in (3, 4)]
        streams = [
            JobStream(tasks[0], TraceArrivals([0.0, 6.0])),
            JobStream(tasks[1], TraceArrivals([0.0, 2.0])),
        ]
        workload = build_workload(streams, 10.0)
        assert [(job.release, job.stream, job.index) for job in workload] == [
            (0.0, 0, 0),
            (0.0, 1, 0),
            (2.0, 1, 1),
            (6.0, 0, 1),
        ]

    def test_build_workload_draw_identical_under_jobs(self):
        tasks = [make_random_host_task(s, n_max=8) for s in (5, 6)]
        streams = [
            JobStream(tasks[0], PeriodicArrivals(period=1.0, jitter=0.5, seed=1)),
            JobStream(tasks[1], SporadicArrivals(min_gap=0.5, max_gap=1.5, seed=2)),
        ]
        serial = build_workload(streams, 300.0)
        parallel = build_workload(streams, 300.0, jobs=4)
        assert [job.release for job in serial] == [job.release for job in parallel]
        assert [(j.stream, j.index) for j in serial] == [
            (j.stream, j.index) for j in parallel
        ]

    def test_releases_at_or_past_horizon_are_dropped(self):
        task = make_random_host_task(7, n_max=8)
        stream = JobStream(task, TraceArrivals([0.0, 9.0, 10.0, 11.0]))
        assert [job.release for job in stream.instances(10.0)] == [0.0, 9.0]


# ----------------------------------------------------------------------
# Result metrics
# ----------------------------------------------------------------------
class TestWorkloadMetrics:
    def _two_stream_result(self):
        tasks = [make_random_host_task(s, n_max=12) for s in (8, 9)]
        streams = [
            JobStream(tasks[0], PeriodicArrivals(period=30.0), deadline=25.0),
            JobStream(tasks[1], PeriodicArrivals(period=45.0, offset=5.0)),
        ]
        workload = build_workload(streams, 200.0)
        return workload, simulate_workload(workload, 2, None)

    def test_response_times_and_summary(self):
        workload, result = self._two_stream_result()
        assert result.count == len(workload)
        assert np.all(result.completions >= result.releases)
        responses = result.response_times
        assert responses.tolist() == (result.completions - result.releases).tolist()
        summary = result.summary()
        assert summary["instances"] == result.count
        assert summary["makespan"] == result.makespan()
        assert summary["miss_ratio"] == result.miss_ratio()
        assert summary["mean_response"] == result.mean_response()
        assert summary["peak_backlog"] == result.peak_backlog()

    def test_instances_without_deadline_never_miss(self):
        _, result = self._two_stream_result()
        # Stream 1 has no deadline anywhere: its instances cannot miss.
        stream1 = result.streams == 1
        assert not np.any(result.missed[stream1])

    def test_backlog_trajectory_is_conservative(self):
        _, result = self._two_stream_result()
        times, levels = result.backlog()
        assert np.all(np.diff(times) > 0)  # collapsed to one level per instant
        assert levels[-1] == 0  # everything eventually completes
        assert levels.max() == result.peak_backlog()
        # The trajectory is a counting process: it matches the
        # releases-minus-completions balance at every event time.
        for when, level in zip(times, levels):
            released = np.count_nonzero(result.releases <= when)
            done = np.count_nonzero(result.completions <= when)
            assert level == released - done

    def test_empty_workload(self):
        result = simulate_workload([], 2, None)
        assert result.count == 0
        assert result.makespan() == 0.0
        assert result.miss_ratio() == 0.0
        assert result.peak_backlog() == 0
        times, levels = result.backlog()
        assert len(times) == 0 and len(levels) == 0


# ----------------------------------------------------------------------
# Engine contracts
# ----------------------------------------------------------------------
class TestEngineContracts:
    def test_backend_resolution(self):
        assert resolve_workload_backend("auto") == "numpy"
        assert resolve_workload_backend("numpy") == "numpy"
        assert resolve_workload_backend("reference") == "reference"
        with pytest.raises(SimulationError):
            resolve_workload_backend("compiled")
        with pytest.raises(ValueError):
            resolve_workload_backend("cuda")

    def test_unsorted_workload_rejected(self):
        task = make_random_host_task(10, n_max=8)
        jobs = [
            JobInstance(task=task, release=5.0, stream=0, index=1),
            JobInstance(task=task, release=0.0, stream=0, index=0),
        ]
        with pytest.raises(SimulationError):
            simulate_workload(jobs, 2, None)

    def test_policy_without_vector_form_rejected(self):
        from repro.simulation.schedulers import FixedPriorityPolicy

        task = make_random_host_task(11, n_max=8)
        jobs = [JobInstance(task=task, release=0.0)]
        table = {node: 1.0 for node in task.graph.nodes()}

        class Opaque(FixedPriorityPolicy):
            @property
            def policy_vector_kind(self):
                return None

        with pytest.raises(SimulationError):
            simulate_workload(jobs, 2, Opaque(table))

    @pytest.mark.parametrize("policy_name", _POLICY_NAMES)
    def test_single_instance_anchors_to_simulate_makespan(self, policy_name):
        for seed, heterogeneous in ((21, False), (22, True)):
            task = _task(seed, heterogeneous)
            jobs = [JobInstance(task=task, release=0.0)]
            platform = Platform(2, 1)
            expected = simulate_makespan(task, platform, _policy(policy_name, 7))
            for backend in ("reference", "numpy"):
                result = simulate_workload(
                    jobs, platform, _policy(policy_name, 7), backend=backend
                )
                assert result.completions[0] == expected

    @pytest.mark.parametrize("policy_name", _POLICY_NAMES)
    def test_simultaneous_releases_bit_identical(self, policy_name):
        task = _task(23, True)
        jobs = [
            JobInstance(task=task, release=0.0, stream=0, index=k)
            for k in range(6)
        ]
        reference = simulate_workload_reference(jobs, 2, _policy(policy_name, 3))
        coupled = simulate_workload(
            jobs, 2, _policy(policy_name, 3), backend="numpy"
        )
        assert reference.completions.tolist() == coupled.completions.tolist()


# ----------------------------------------------------------------------
# The hypothesis harness: coupled lockstep == scalar reference, exactly
# ----------------------------------------------------------------------
@st.composite
def workload_cases(draw):
    stream_count = draw(st.integers(min_value=1, max_value=3))
    streams = []
    for index in range(stream_count):
        seed = draw(st.integers(min_value=0, max_value=3_000))
        task = _task(seed, draw(st.booleans()))
        kind = draw(st.sampled_from(["periodic", "sporadic", "trace"]))
        if kind == "periodic":
            arrivals = PeriodicArrivals(
                period=draw(
                    st.floats(min_value=5.0, max_value=60.0, allow_nan=False)
                ),
                jitter=draw(
                    st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
                ),
                seed=seed,
            )
        elif kind == "sporadic":
            arrivals = SporadicArrivals(
                min_gap=draw(
                    st.floats(min_value=2.0, max_value=20.0, allow_nan=False)
                ),
                max_gap=60.0,
                seed=seed,
            )
        else:
            count = draw(st.integers(min_value=1, max_value=5))
            arrivals = TraceArrivals(
                [
                    draw(
                        st.floats(
                            min_value=0.0, max_value=100.0, allow_nan=False
                        )
                    )
                    for _ in range(count)
                ]
            )
        streams.append(JobStream(task=task, arrivals=arrivals, deadline=40.0))
    horizon = draw(st.floats(min_value=10.0, max_value=120.0, allow_nan=False))
    policy_name = draw(st.sampled_from(_POLICY_NAMES))
    policy_seed = draw(st.integers(min_value=0, max_value=500))
    cores = draw(st.integers(min_value=1, max_value=4))
    accelerators = draw(st.integers(min_value=1, max_value=2))
    return streams, horizon, policy_name, policy_seed, Platform(cores, accelerators)


class TestCoupledBitIdentity:
    @given(case=workload_cases())
    @settings(max_examples=60, deadline=None)
    def test_coupled_lockstep_matches_scalar_reference(self, case):
        streams, horizon, policy_name, policy_seed, platform = case
        workload = build_workload(streams, horizon)
        reference = simulate_workload_reference(
            workload, platform, _policy(policy_name, policy_seed)
        )
        coupled = simulate_workload(
            workload, platform, _policy(policy_name, policy_seed), backend="numpy"
        )
        assert reference.completions.tolist() == coupled.completions.tolist()
        assert reference.releases.tolist() == coupled.releases.tolist()
        assert reference.miss_ratio() == coupled.miss_ratio()

    @given(case=workload_cases())
    @settings(max_examples=15, deadline=None)
    def test_offload_disabled_also_bit_identical(self, case):
        streams, horizon, policy_name, policy_seed, platform = case
        workload = build_workload(streams, horizon)
        reference = simulate_workload_reference(
            workload,
            platform,
            _policy(policy_name, policy_seed),
            offload_enabled=False,
        )
        coupled = simulate_workload(
            workload,
            platform,
            _policy(policy_name, policy_seed),
            offload_enabled=False,
            backend="numpy",
        )
        assert reference.completions.tolist() == coupled.completions.tolist()
