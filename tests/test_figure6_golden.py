"""Golden regression test for the small-scale Figure 6 sweep.

The expected curves are serialised in ``tests/data/figure6_golden.json``.
Figure 6 exercises the whole simulation stack (chunked seeded generation,
Algorithm 1 transformation, the vectorised lockstep kernel behind
``simulate_many``), so a bit-identical golden curve pins the entire
pipeline: any change to draws, scheduling semantics or float evaluation
order shows up here.

The sweep must also be bit-identical under ``--jobs``: the parallel path
only distributes deterministic evaluation (per-chunk lockstep batches vs
the serial whole-column batch -- the kernel's per-lane results do not
depend on batch composition).

Regenerate the golden file (after an *intentional* pipeline change) with::

    PYTHONPATH=src python tests/test_figure6_golden.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.config import ExperimentScale
from repro.experiments.figure6 import run_figure6

GOLDEN_PATH = Path(__file__).parent / "data" / "figure6_golden.json"

#: Small but non-trivial scale: two host sizes, three fractions, enough
#: tasks for the paired design and both task variants to matter.
GOLDEN_SCALE = ExperimentScale(
    dags_per_point=4,
    core_counts=(2, 4),
    fractions=[0.04, 0.2, 0.5],
    small_task_fractions=[0.2],
    ilp_node_range=(3, 9),
    ilp_wcet_max=6,
    ilp_time_limit=None,
    seed=2018,
)


def _run(jobs=None) -> dict:
    return run_figure6(GOLDEN_SCALE, jobs=jobs).to_dict()


class TestFigure6Golden:
    def test_matches_golden_curve(self):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert _run() == golden

    def test_bit_identical_under_jobs(self):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert _run(jobs=2) == golden


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(_run(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"golden curve written to {GOLDEN_PATH}")
    else:
        print(__doc__)
